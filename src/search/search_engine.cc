#include "search/search_engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "obs/obs.h"
#include "search/tokenizer.h"

namespace pds::search {

namespace {

/// Search metrics, resolved once so the per-query cost is a handful of
/// atomic adds — never a registry lookup on the query path.
struct SearchObs {
  obs::Counter* queries;
  obs::Counter* terms_scanned;
  obs::Counter* postings_merged;

  static const SearchObs& Get() {
    static const SearchObs hooks = [] {
      obs::Registry& reg = obs::Registry::Global();
      return SearchObs{reg.GetCounter("search.queries", "ops"),
                       reg.GetCounter("search.terms_scanned", "ops"),
                       reg.GetCounter("search.postings_merged", "ops")};
    }();
    return hooks;
  }
};

/// Bounded min-heap of the N best (score, docid) pairs.
class TopN {
 public:
  explicit TopN(size_t n) : n_(n) {}

  void Offer(double score, uint32_t docid) {
    if (n_ == 0) {
      return;
    }
    if (heap_.size() < n_) {
      heap_.push_back(SearchResult{docid, score});
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
      return;
    }
    if (Better(score, docid, heap_.front().score, heap_.front().docid)) {
      std::pop_heap(heap_.begin(), heap_.end(), MinFirst);
      heap_.back() = SearchResult{docid, score};
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
    }
  }

  std::vector<SearchResult> Sorted() {
    std::vector<SearchResult> out = heap_;
    std::sort(out.begin(), out.end(),
              [](const SearchResult& a, const SearchResult& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.docid > b.docid;  // newer doc wins ties
              });
    return out;
  }

  size_t ram_bytes() const { return n_ * sizeof(SearchResult); }

 private:
  static bool Better(double score_a, uint32_t docid_a, double score_b,
                     uint32_t docid_b) {
    if (score_a != score_b) return score_a > score_b;
    return docid_a > docid_b;
  }
  static bool MinFirst(const SearchResult& a, const SearchResult& b) {
    return Better(a.score, a.docid, b.score, b.docid);
  }

  size_t n_;
  std::vector<SearchResult> heap_;
};

// pdslint: ram-exempt(deduplicated term list is bounded by the query's term
// count, not by indexed data)
std::vector<std::string> UniqueTerms(const std::vector<std::string>& terms) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const std::string& raw : terms) {
    for (std::string& token : Tokenize(raw)) {
      if (seen.insert(token).second) {
        out.push_back(std::move(token));
      }
    }
  }
  return out;
}

}  // namespace

EmbeddedSearchEngine::EmbeddedSearchEngine(flash::Partition partition,
                                           mcu::RamGauge* gauge,
                                           const Options& options)
    : index_(partition, gauge, options.index),
      gauge_(gauge),
      options_(options) {}

Status EmbeddedSearchEngine::Init() { return index_.Init(); }

Result<uint32_t> EmbeddedSearchEngine::AddDocument(std::string_view text) {
  uint32_t docid = next_docid_++;
  PDS_RETURN_IF_ERROR(index_.AddDocument(docid, TermFrequencies(text)));
  return docid;
}

Status EmbeddedSearchEngine::Flush() { return index_.FlushBuffer(); }

Result<std::vector<SearchResult>> EmbeddedSearchEngine::Search(
    const std::vector<std::string>& query_terms, size_t top_n) {
  obs::Span query_span("search.query", "search");
  const SearchObs& hooks = SearchObs::Get();
  hooks.queries->Add(1);
  std::vector<std::string> terms = UniqueTerms(query_terms);
  if (terms.empty() || index_.num_documents() == 0) {
    return std::vector<SearchResult>{};
  }

  // Pass 1: document frequency per term (for IDF).
  std::vector<double> idf;
  std::vector<std::string> live_terms;
  {
    obs::Span df_span("search.df_pass", "search");
    for (const std::string& term : terms) {
      PDS_ASSIGN_OR_RETURN(uint32_t df, index_.DocumentFrequency(term));
      if (df > 0) {
        idf.push_back(std::log(static_cast<double>(index_.num_documents()) /
                               static_cast<double>(df)));
        live_terms.push_back(term);
      }
    }
    hooks.terms_scanned->Add(terms.size());
    df_span.AddArg("terms", static_cast<double>(terms.size()));
  }
  if (live_terms.empty()) {
    return std::vector<SearchResult>{};
  }

  // Pipeline RAM: one flash page per keyword cursor + the bounded heap.
  TopN heap(top_n);
  size_t ram = live_terms.size() * index_.page_size() + heap.ram_bytes();
  PDS_RETURN_IF_ERROR(gauge_->Acquire(ram));

  // Pass 2: open a cursor per keyword and merge by descending docid.
  obs::Span merge_span("search.merge_pass", "search");
  uint64_t postings = 0;
  std::vector<InvertedIndexLog::TermCursor> cursors;
  cursors.reserve(live_terms.size());
  Status status = Status::Ok();
  for (const std::string& term : live_terms) {
    Result<InvertedIndexLog::TermCursor> cursor = index_.OpenTerm(term);
    if (!cursor.ok()) {
      status = cursor.status();
      break;
    }
    cursors.push_back(std::move(cursor).value());
  }

  while (status.ok()) {
    // Highest docid among live cursors.
    bool any = false;
    uint32_t docid = 0;
    for (const auto& c : cursors) {
      if (!c.AtEnd() && (!any || c.docid() > docid)) {
        docid = c.docid();
        any = true;
      }
    }
    if (!any) {
      break;
    }
    // All postings for this docid arrive simultaneously: score in pipeline.
    double score = 0.0;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (!cursors[i].AtEnd() && cursors[i].docid() == docid) {
        score += static_cast<double>(cursors[i].weight()) * idf[i];
        ++postings;
        status = cursors[i].Advance();
        if (!status.ok()) {
          break;
        }
      }
    }
    if (status.ok()) {
      heap.Offer(score, docid);
    }
  }

  gauge_->Release(ram);
  hooks.postings_merged->Add(postings);
  merge_span.AddArg("postings", static_cast<double>(postings));
  if (!status.ok()) {
    return status;
  }
  return heap.Sorted();
}

Result<std::vector<SearchResult>> EmbeddedSearchEngine::SearchNaive(
    const std::vector<std::string>& query_terms, size_t top_n) {
  std::vector<std::string> terms = UniqueTerms(query_terms);
  if (terms.empty() || index_.num_documents() == 0) {
    return std::vector<SearchResult>{};
  }

  // One container per retrieved docid, holding one weight per query term —
  // the strawman's RAM grows with the number of candidate documents.
  struct Accumulator {
    std::vector<uint32_t> weights;
  };
  std::map<uint32_t, Accumulator> per_doc;
  std::vector<uint32_t> df(terms.size(), 0);
  size_t charged = 0;
  Status status = Status::Ok();

  for (size_t i = 0; i < terms.size() && status.ok(); ++i) {
    Result<InvertedIndexLog::TermCursor> cursor = index_.OpenTerm(terms[i]);
    if (!cursor.ok()) {
      status = cursor.status();
      break;
    }
    while (!cursor->AtEnd()) {
      ++df[i];
      auto [it, inserted] = per_doc.try_emplace(cursor->docid());
      if (inserted) {
        it->second.weights.assign(terms.size(), 0);
        size_t cost =
            options_.naive_container_bytes + terms.size() * sizeof(uint32_t);
        status = gauge_->Acquire(cost);
        if (!status.ok()) {
          break;
        }
        charged += cost;
      }
      it->second.weights[i] += cursor->weight();
      status = cursor->Advance();
      if (!status.ok()) {
        break;
      }
    }
  }

  std::vector<SearchResult> out;
  if (status.ok()) {
    TopN heap(top_n);
    for (const auto& [docid, acc] : per_doc) {
      double score = 0.0;
      for (size_t i = 0; i < terms.size(); ++i) {
        if (df[i] == 0 || acc.weights[i] == 0) {
          continue;
        }
        double idf = std::log(static_cast<double>(index_.num_documents()) /
                              static_cast<double>(df[i]));
        score += static_cast<double>(acc.weights[i]) * idf;
      }
      if (score > 0.0) {
        heap.Offer(score, docid);
      }
    }
    out = heap.Sorted();
  }

  gauge_->Release(charged);
  if (!status.ok()) {
    return status;
  }
  return out;
}

}  // namespace pds::search
