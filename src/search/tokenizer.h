#ifndef PDS_SEARCH_TOKENIZER_H_
#define PDS_SEARCH_TOKENIZER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pds::search {

/// Splits text into lowercase alphanumeric tokens.
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenizes and counts term frequencies.
std::map<std::string, uint32_t> TermFrequencies(std::string_view text);

}  // namespace pds::search

#endif  // PDS_SEARCH_TOKENIZER_H_
