#ifndef PDS_SEARCH_INVERTED_INDEX_H_
#define PDS_SEARCH_INVERTED_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace pds::search {

/// One posting: a (term, docid, weight) triple, the unit the tutorial's
/// embedded search engine stores ("Stores triples (keyword, docid, weight)").
/// Terms are represented by their 64-bit hash — an embedded device cannot
/// afford an in-RAM term dictionary; the 2^-64 collision probability is the
/// standard trade (same as Microsearch).
struct Posting {
  uint64_t term_hash = 0;
  uint32_t docid = 0;
  uint16_t weight = 0;  // term frequency in the document

  static constexpr size_t kEncodedSize = 14;
};

/// Sequential, log-only inverted index: a RAM hash table of bucket heads
/// pointing to chains of flash pages, newest page first. Pages are written
/// strictly sequentially; each page carries a back-pointer to the previous
/// page of its bucket (the structure in the tutorial's "How to store the
/// inverted index sequentially?" slide).
///
/// Insertion order is docid-increasing, so walking a chain newest-to-oldest
/// and each page back-to-front yields docids in *descending* order — the
/// property that enables pipeline merge at query time.
class InvertedIndexLog {
 public:
  struct Options {
    uint32_t num_buckets = 64;
    /// RAM dedicated to buffering postings before a flush (charged to the
    /// MCU gauge for the lifetime of the index).
    size_t insert_buffer_bytes = 2048;
  };

  InvertedIndexLog(flash::Partition partition, mcu::RamGauge* gauge,
                   const Options& options);
  ~InvertedIndexLog();

  InvertedIndexLog(const InvertedIndexLog&) = delete;
  InvertedIndexLog& operator=(const InvertedIndexLog&) = delete;

  /// Call once before use; charges the RAM the index permanently occupies
  /// (hash table + insert buffer).
  Status Init();

  /// Adds the postings of one document. Docids must be strictly
  /// increasing across calls.
  Status AddDocument(uint32_t docid,
                     const std::map<std::string, uint32_t>& term_freqs);

  /// Flushes buffered postings to flash (call before querying to make the
  /// cost model exact; queries also read the RAM buffer correctly without).
  Status FlushBuffer();

  /// Streaming cursor over one term's postings in descending docid order.
  class TermCursor {
   public:
    bool AtEnd() const { return at_end_; }
    uint32_t docid() const { return current_.docid; }
    uint16_t weight() const { return current_.weight; }

    /// Moves to the next (older) posting of the term.
    Status Advance();

   private:
    friend class InvertedIndexLog;
    TermCursor(InvertedIndexLog* index, uint64_t term_hash);

    Status LoadPage(uint32_t page_addr);
    /// Scans backwards within the current page + chain for the next match.
    Status FindNextMatch();

    InvertedIndexLog* index_ = nullptr;
    uint64_t term_hash_ = 0;
    bool at_end_ = true;
    Posting current_;

    // Unflushed postings of this bucket (scanned first, newest first).
    std::vector<Posting> ram_postings_;
    size_t ram_pos_ = 0;

    Bytes page_;
    uint32_t next_prev_addr_ = kNullPage;
    int triple_index_ = -1;  // next triple to inspect within page_
    bool page_loaded_ = false;
  };

  /// Opens a cursor for a term; positions it on the newest posting.
  Result<TermCursor> OpenTerm(std::string_view term);

  /// Number of documents containing `term` (walks the full chain: one read
  /// per chain page — this is the first pass of the two-pass query).
  Result<uint32_t> DocumentFrequency(std::string_view term);

  uint32_t num_documents() const { return num_documents_; }
  uint32_t num_pages() const { return next_page_; }
  uint32_t page_size() const { return partition_.page_size(); }
  static uint64_t HashTerm(std::string_view term);

  static constexpr uint32_t kNullPage = 0xFFFFFFFFu;

 private:
  friend class TermCursor;

  uint32_t BucketOf(uint64_t term_hash) const {
    return static_cast<uint32_t>(term_hash % num_buckets());
  }
  uint32_t num_buckets() const { return options_.num_buckets; }
  size_t buffer_bytes_used() const {
    return buffered_count_ * Posting::kEncodedSize;
  }

  /// Writes all buffered postings of one bucket into chained pages.
  Status FlushBucket(uint32_t bucket);

  flash::Partition partition_;
  mcu::RamGauge* gauge_;
  Options options_;
  bool initialized_ = false;

  std::vector<uint32_t> bucket_heads_;  // RAM hash table of chain heads
  std::vector<std::vector<Posting>> buffer_;  // per-bucket pending postings
  size_t buffered_count_ = 0;
  size_t charged_ram_ = 0;

  uint32_t next_page_ = 0;
  uint32_t num_documents_ = 0;
  uint32_t last_docid_ = 0;
  bool any_document_ = false;
};

}  // namespace pds::search

#endif  // PDS_SEARCH_INVERTED_INDEX_H_
