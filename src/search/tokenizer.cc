#include "search/tokenizer.h"

#include <cctype>

namespace pds::search {

// pdslint: ram-exempt(token buffers are bounded by the caller-supplied text,
// which the embedded pipeline stages one flash page at a time)
std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

std::map<std::string, uint32_t> TermFrequencies(std::string_view text) {
  std::map<std::string, uint32_t> tf;
  for (std::string& token : Tokenize(text)) {
    ++tf[token];
  }
  return tf;
}

}  // namespace pds::search
