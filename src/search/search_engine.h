#ifndef PDS_SEARCH_SEARCH_ENGINE_H_
#define PDS_SEARCH_SEARCH_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"
#include "search/inverted_index.h"

namespace pds::search {

/// One ranked hit.
struct SearchResult {
  uint32_t docid = 0;
  double score = 0.0;
};

/// Embedded top-N TF-IDF search engine over the log-only inverted index
/// (tutorial Part II, "First illustration: embedded search engines").
///
/// Two query evaluators are provided:
///  - `Search` — the pipeline evaluator: per query keyword it holds one
///    flash page in RAM and merges posting streams by descending docid,
///    maintaining only a bounded top-N heap. RAM = O(#keywords + N).
///  - `SearchNaive` — the strawman the tutorial calls out ("one container
///    is allocated per retrieved docid ... too much!"): it aggregates into
///    a per-docid table and fails with ResourceExhausted when the MCU RAM
///    budget is hit.
///
/// Both return identical rankings when the naive evaluator fits in RAM —
/// a property the test suite checks.
class EmbeddedSearchEngine {
 public:
  struct Options {
    InvertedIndexLog::Options index;
    /// Bytes charged per (docid -> accumulator) container in the naive
    /// evaluator (pointer-free lower bound of a hash-map node).
    size_t naive_container_bytes = 32;
  };

  EmbeddedSearchEngine(flash::Partition partition, mcu::RamGauge* gauge,
                       const Options& options);

  Status Init();

  /// Indexes a document and returns its docid (assigned sequentially).
  Result<uint32_t> AddDocument(std::string_view text);

  /// Flushes the insert buffer to flash.
  Status Flush();

  /// Pipeline top-N query. Two passes over the touched bucket chains:
  /// pass 1 computes document frequencies (for IDF), pass 2 merges.
  Result<std::vector<SearchResult>> Search(
      const std::vector<std::string>& query_terms, size_t top_n);

  /// Strawman evaluator: single pass, container per candidate docid.
  Result<std::vector<SearchResult>> SearchNaive(
      const std::vector<std::string>& query_terms, size_t top_n);

  uint32_t num_documents() const { return index_.num_documents(); }
  uint32_t num_index_pages() const { return index_.num_pages(); }

 private:
  InvertedIndexLog index_;
  mcu::RamGauge* gauge_;
  Options options_;
  uint32_t next_docid_ = 1;
};

}  // namespace pds::search

#endif  // PDS_SEARCH_SEARCH_ENGINE_H_
