#include "obs/obs.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "common/clock.h"

namespace pds::obs {

namespace {

uint64_t BitsOf(double d) {
  uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

double DoubleOf(uint64_t b) {
  double d;
  std::memcpy(&d, &b, 8);
  return d;
}

/// Escapes the handful of JSON-hostile characters span names could contain.
void JsonEscape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out << c;
    }
  }
}

void JsonNumber(std::ostream& out, double v) {
  if (std::isfinite(v) && v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    out << static_cast<int64_t>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", std::isfinite(v) ? v : 0.0);
  out << buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// AtomicF64
// ---------------------------------------------------------------------------

void AtomicF64::Add(double delta) {
  uint64_t cur = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(cur, BitsOf(DoubleOf(cur) + delta),
                                      std::memory_order_relaxed)) {
  }
}

void AtomicF64::StoreMax(double v) {
  uint64_t cur = bits_.load(std::memory_order_relaxed);
  while (DoubleOf(cur) < v &&
         !bits_.compare_exchange_weak(cur, BitsOf(v),
                                      std::memory_order_relaxed)) {
  }
}

void AtomicF64::Store(double v) {
  bits_.store(BitsOf(v), std::memory_order_relaxed);
}

double AtomicF64::Load() const {
  return DoubleOf(bits_.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

/// Midpoint of sub-bucket `sub` of exponent range `exp`: the range
/// [2^(exp-1), 2^exp) is split into kSubBuckets equal linear slices.
double SubBucketMidpoint(size_t exp, size_t sub) {
  return std::ldexp(
      1.0 + (static_cast<double>(sub) + 0.5) / Histogram::kSubBuckets,
      static_cast<int>(exp) - 1);
}

}  // namespace

void Histogram::Record(double v) {
#if PDS_OBS_ENABLED
  count_.Add(1);
  sum_.Add(v);
  min_.StoreMax(-v);  // negated: the max of -v is the min of v
  max_.StoreMax(v);
  size_t slot = 0;  // v <= 0 and subnormal tails land in the lowest slot
  if (v > 0) {
    int exp = 0;
    double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
    if (exp >= static_cast<int>(kBuckets)) {
      slot = kBuckets * kSubBuckets - 1;
    } else if (exp >= 0) {
      int sub = static_cast<int>((m * 2.0 - 1.0) *
                                 static_cast<double>(kSubBuckets));
      if (sub < 0) sub = 0;
      if (sub >= static_cast<int>(kSubBuckets)) sub = kSubBuckets - 1;
      slot = static_cast<size_t>(exp) * kSubBuckets +
             static_cast<size_t>(sub);
    }
  }
  sub_[slot].Add(1);
#else
  (void)v;
#endif
}

uint64_t Histogram::bucket(size_t i) const {
  uint64_t n = 0;
  for (size_t s = 0; s < kSubBuckets; ++s) {
    n += sub_[i * kSubBuckets + s].Value();
  }
  return n;
}

double Histogram::Percentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 *
                                                  static_cast<double>(n)));
  if (rank < 1) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets * kSubBuckets; ++i) {
    seen += sub_[i].Value();
    if (seen >= rank) {
      double rep = SubBucketMidpoint(i / kSubBuckets, i % kSubBuckets);
      // Clamp into the observed range: the extreme buckets cover values the
      // histogram never saw, and min/max are tracked exactly.
      if (rep < min()) rep = min();
      if (rep > max()) rep = max();
      return rep;
    }
  }
  return max();
}

double Histogram::min() const { return count() == 0 ? 0.0 : -min_.Load(); }

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::Reset() {
  count_.Reset();
  sum_.Store(0);
  min_.Store(-std::numeric_limits<double>::infinity());
  max_.Store(0);
  for (Counter& b : sub_) b.Reset();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {
enum class MetricKind { kCounter, kGauge, kHistogram };
}  // namespace

struct Registry::Impl {
  struct Entry {
    std::string name;
    std::string unit;
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram hist;
  };

  mutable std::mutex mu;
  std::deque<Entry> entries;  // deque: pointers stay stable forever
  std::map<std::string, Entry*, std::less<>> by_name;

  Entry* FindOrCreate(std::string_view name, std::string_view unit,
                      MetricKind kind) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    entries.emplace_back();
    Entry* e = &entries.back();
    e->name = std::string(name);
    e->unit = std::string(unit);
    e->kind = kind;
    by_name.emplace(e->name, e);
    return e;
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::Global() {
  // Leaked on purpose: metric pointers handed out at setup must stay valid
  // through static destruction.
  static Registry* global = new Registry();
  return *global;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view unit) {
  return &impl_->FindOrCreate(name, unit, MetricKind::kCounter)->counter;
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view unit) {
  return &impl_->FindOrCreate(name, unit, MetricKind::kGauge)->gauge;
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view unit) {
  return &impl_->FindOrCreate(name, unit, MetricKind::kHistogram)->hist;
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (Impl::Entry& e : impl_->entries) {
    e.counter.Reset();
    e.gauge.Reset();
    e.hist.Reset();
  }
}

size_t Registry::num_metrics() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->entries.size();
}

void Registry::ExportMetricsJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  out << "{\n  \"records\": [";
  bool first = true;
  for (const Impl::Entry& e : impl_->entries) {
    if (!first) out << ',';
    first = false;
    out << "\n    {\"name\": \"";
    JsonEscape(out, e.name);
    out << "\", \"kind\": \"";
    switch (e.kind) {
      case MetricKind::kCounter: out << "counter"; break;
      case MetricKind::kGauge: out << "gauge"; break;
      case MetricKind::kHistogram: out << "histogram"; break;
    }
    out << "\", \"value\": ";
    switch (e.kind) {
      case MetricKind::kCounter:
        out << e.counter.Value();
        break;
      case MetricKind::kGauge:
        JsonNumber(out, e.gauge.Value());
        out << ", \"max\": ";
        JsonNumber(out, e.gauge.max());
        break;
      case MetricKind::kHistogram:
        out << e.hist.count();
        out << ", \"sum\": ";
        JsonNumber(out, e.hist.sum());
        out << ", \"min\": ";
        JsonNumber(out, e.hist.min());
        out << ", \"max\": ";
        JsonNumber(out, e.hist.max());
        out << ", \"mean\": ";
        JsonNumber(out, e.hist.mean());
        break;
    }
    out << ", \"unit\": \"";
    JsonEscape(out, e.unit);
    out << "\"}";
  }
  out << "\n  ]\n}\n";
}

std::string Registry::MetricsJson() const {
  std::ostringstream out;
  ExportMetricsJson(out);
  return out.str();
}

std::vector<Registry::MetricValue> Registry::SnapshotValues() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<MetricValue> values;
  values.reserve(impl_->entries.size());
  for (const Impl::Entry& e : impl_->entries) {
    double v = 0;
    switch (e.kind) {
      case MetricKind::kCounter:
        v = static_cast<double>(e.counter.Value());
        break;
      case MetricKind::kGauge:
        v = e.gauge.Value();
        break;
      case MetricKind::kHistogram:
        v = static_cast<double>(e.hist.count());
        break;
    }
    values.push_back({e.name, v});
  }
  return values;
}

// ---------------------------------------------------------------------------
// SnapshotRing
// ---------------------------------------------------------------------------

SnapshotRing::SnapshotRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SnapshotRing::Capture(const Registry& reg) {
  std::vector<Registry::MetricValue> values = reg.SnapshotValues();
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.seq = ++captures_;
  for (const Registry::MetricValue& mv : values) {
    auto it = last_.find(mv.name);
    double prev = it == last_.end() ? 0.0 : it->second;
    if (mv.value != prev) {
      snap.deltas.push_back({mv.name, mv.value, mv.value - prev});
    }
    last_[mv.name] = mv.value;
  }
  if (ring_.size() == capacity_) ring_.erase(ring_.begin());
  ring_.push_back(std::move(snap));
}

size_t SnapshotRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t SnapshotRing::captures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captures_;
}

std::vector<SnapshotRing::Snapshot> SnapshotRing::Snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

void SnapshotRing::ExportJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"captures\": " << captures_ << ", \"snapshots\": [";
  bool first_snap = true;
  for (const Snapshot& snap : ring_) {
    if (!first_snap) out << ',';
    first_snap = false;
    out << "\n  {\"seq\": " << snap.seq << ", \"deltas\": [";
    bool first_delta = true;
    for (const Delta& d : snap.deltas) {
      if (!first_delta) out << ',';
      first_delta = false;
      out << "\n    {\"name\": \"";
      JsonEscape(out, d.name);
      out << "\", \"value\": ";
      JsonNumber(out, d.value);
      out << ", \"delta\": ";
      JsonNumber(out, d.delta);
      out << '}';
    }
    out << "]}";
  }
  out << "\n]}\n";
}

std::string SnapshotRing::Json() const {
  std::ostringstream out;
  ExportJson(out);
  return out.str();
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

struct Tracer::Impl {
  mutable std::mutex mu;
  std::vector<SpanEvent> events;
  size_t capacity = 1 << 16;
  std::deque<std::string> interned;
  std::atomic<uint32_t> next_tid{1};
};

namespace {

/// Per-thread span bookkeeping for Tracer::Global(). `suppressed` counts
/// open spans skipped by the sampler/capacity so their children skip too.
struct ThreadState {
  uint32_t tid = 0;
  std::vector<uint64_t> stack;
  uint32_t suppressed = 0;
};

ThreadState& Tls() {
  static thread_local ThreadState state;
  return state;
}

}  // namespace

Tracer::Tracer() : impl_(new Impl) { impl_->events.reserve(impl_->capacity); }
Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::Global() {
  static Tracer* global = new Tracer();  // leaked, like the Registry
  return *global;
}

void Tracer::SetEnabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::SetSampleEveryN(uint32_t n) {
  sample_n_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

void Tracer::SetCapacity(size_t events) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->capacity = events;
  impl_->events.clear();
  impl_->events.reserve(events);
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->events.clear();
  dropped_.store(0, std::memory_order_relaxed);
  root_seq_.store(0, std::memory_order_relaxed);
}

size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->events.size();
}

uint64_t Tracer::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<SpanEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->events;
}

void Tracer::Append(const SpanEvent& event) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->events.size() >= impl_->capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  impl_->events.push_back(event);
}

void Tracer::Instant(const char* name, const char* category, const char* key0,
                     double val0, const char* key1, double val1) {
  if (!enabled()) return;
  ThreadState& ts = Tls();
  if (ts.tid == 0) ts.tid = impl_->next_tid.fetch_add(1);
  SpanEvent e;
  e.name = name;
  e.category = category;
  e.start_ns = MonotonicNanos();
  e.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  e.parent = ts.stack.empty() ? 0 : ts.stack.back();
  e.tid = ts.tid;
  e.instant = true;
  if (key0 != nullptr) {
    e.arg_key[e.num_args] = key0;
    e.arg_val[e.num_args] = val0;
    ++e.num_args;
  }
  if (key1 != nullptr) {
    e.arg_key[e.num_args] = key1;
    e.arg_val[e.num_args] = val1;
    ++e.num_args;
  }
  Append(e);
}

const char* Tracer::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const std::string& s : impl_->interned) {
    if (s == name) return s.c_str();
  }
  impl_->interned.emplace_back(name);
  return impl_->interned.back().c_str();
}

void Tracer::ExportChromeTrace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint64_t base = 0;
  for (const SpanEvent& e : impl_->events) {
    if (base == 0 || e.start_ns < base) base = e.start_ns;
  }
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const SpanEvent& e : impl_->events) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\": \"";
    JsonEscape(out, e.name);
    out << "\", \"cat\": \"";
    JsonEscape(out, e.category);
    out << "\", \"ph\": \"" << (e.instant ? 'i' : 'X') << "\", \"ts\": ";
    JsonNumber(out, static_cast<double>(e.start_ns - base) / 1000.0);
    if (!e.instant) {
      out << ", \"dur\": ";
      JsonNumber(out, static_cast<double>(e.dur_ns) / 1000.0);
    } else {
      out << ", \"s\": \"t\"";
    }
    out << ", \"pid\": 1, \"tid\": " << e.tid;
    out << ", \"args\": {\"span_id\": " << e.id << ", \"parent\": "
        << e.parent;
    for (uint8_t a = 0; a < e.num_args; ++a) {
      out << ", \"";
      JsonEscape(out, e.arg_key[a]);
      out << "\": ";
      JsonNumber(out, e.arg_val[a]);
    }
    out << "}}";
  }
  out << "\n]}\n";
}

std::string Tracer::ChromeTraceJson() const {
  std::ostringstream out;
  ExportChromeTrace(out);
  return out.str();
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

#if PDS_OBS_ENABLED

void Span::Begin(const char* name, const char* category, bool has_remote,
                 RemoteParent remote) {
  name_ = name;
  category_ = category;
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  ThreadState& ts = Tls();
  if (ts.suppressed > 0) {
    suppressing_ = true;
    ++ts.suppressed;
    return;
  }
  bool remote_root = has_remote && remote.span_id != 0 && ts.stack.empty();
  if (ts.stack.empty()) {
    if (remote_root) {
      // The remote root already made the keep/drop call for the whole
      // distributed trace; follow it instead of the local root sampler.
      if (!remote.sampled) {
        suppressing_ = true;
        ++ts.suppressed;
        return;
      }
    } else {
      uint32_t n = tracer.sample_n_.load(std::memory_order_relaxed);
      if (n > 1 &&
          tracer.root_seq_.fetch_add(1, std::memory_order_relaxed) % n != 0) {
        suppressing_ = true;
        ++ts.suppressed;
        return;
      }
    }
  }
  if (ts.tid == 0) ts.tid = tracer.impl_->next_tid.fetch_add(1);
  recorded_ = true;
  id_ = tracer.next_id_.fetch_add(1, std::memory_order_relaxed);
  parent_ = !ts.stack.empty() ? ts.stack.back()
                              : (remote_root ? remote.span_id : 0);
  ts.stack.push_back(id_);
  start_ns_ = MonotonicNanos();
}

void Span::End() {
  if (suppressing_) {
    --Tls().suppressed;
    return;
  }
  if (!recorded_) return;
  ThreadState& ts = Tls();
  ts.stack.pop_back();
  SpanEvent e;
  e.name = name_;
  e.category = category_;
  e.start_ns = start_ns_;
  e.dur_ns = MonotonicNanos() - start_ns_;
  e.id = id_;
  e.parent = parent_;
  e.tid = ts.tid;
  e.num_args = num_args_;
  for (uint8_t a = 0; a < num_args_; ++a) {
    e.arg_key[a] = arg_key_[a];
    e.arg_val[a] = arg_val_[a];
  }
  Tracer::Global().Append(e);
}

void Span::AddArg(const char* key, double value) {
  if (!recorded_ || num_args_ >= 2) return;
  arg_key_[num_args_] = key;
  arg_val_[num_args_] = value;
  ++num_args_;
}

#endif  // PDS_OBS_ENABLED

}  // namespace pds::obs
