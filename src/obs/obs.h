#ifndef PDS_OBS_OBS_H_
#define PDS_OBS_OBS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// pds::obs — the unified tracing/metrics layer.
///
/// Every resource claim of the tutorial is quantified here through one of
/// two primitives:
///
///  - **Spans** (RAII, hierarchical): wall-time intervals recorded into a
///    preallocated, thread-safe trace buffer and exported as Chrome
///    `trace_event` JSON (load the file in chrome://tracing or Perfetto).
///    Protocol phases, SPJ pipeline stages, and search passes are spans.
///  - **Metrics** (named Counter / Gauge / Histogram): process-wide
///    aggregates registered once at setup and bumped with single atomic
///    operations on the hot path. Flash page ops, token↔SSI wire bytes,
///    and RAM high-water marks are metrics. Exported as flat JSON
///    (name → value → unit) consumable by bench/run_benches.sh.
///
/// Cost discipline:
///  - Compile out entirely with -DPDS_OBS_ENABLED=0 (CMake: -DPDS_OBS=OFF).
///    Span becomes an empty struct and every mutator an inline no-op.
///  - At runtime, metrics are always live (one relaxed atomic add each);
///    the tracer is opt-in (`Tracer::Global().SetEnabled(true)`) and has a
///    sampler (`SetSampleEveryN`) that keeps 1 of every N root spans,
///    children following their root's fate.
///  - Embedded modules (embdb/search/logstore/flash/mcu) must hoist
///    registry lookups out of hot loops and use literal span names; the
///    pdslint rule `obs-in-embedded` enforces this.
#ifndef PDS_OBS_ENABLED
#define PDS_OBS_ENABLED 1
#endif

namespace pds::obs {

/// Double accumulator with CAS-loop add (std::atomic<double>::fetch_add is
/// not universally lock-free; this is portable and TSan-clean).
class AtomicF64 {
 public:
  void Add(double delta);
  void StoreMax(double v);
  void Store(double v);
  double Load() const;

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of a double (0.0)
};

/// Monotonic event counter. `Add` is one relaxed atomic add.
class Counter {
 public:
  void Add(uint64_t n = 1) {
#if PDS_OBS_ENABLED
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-value gauge that also tracks the maximum ever set — the shape of a
/// RAM high-water mark.
class Gauge {
 public:
  void Set(double v) {
#if PDS_OBS_ENABLED
    value_.Store(v);
    max_.StoreMax(v);
#else
    (void)v;
#endif
  }
  double Value() const { return value_.Load(); }
  double max() const { return max_.Load(); }
  void Reset() {
    value_.Store(0);
    max_.Store(0);
  }

 private:
  AtomicF64 value_;
  AtomicF64 max_;
};

/// Count/sum/min/max plus an HDR-style log-linear bucket grid — enough for
/// tail-latency distributions without per-record allocation.
///
/// Layout: 32 power-of-two exponent ranges, each split into kSubBuckets
/// linear sub-buckets. A positive sample v with frexp(v) = m·2^e lands in
/// exponent e, sub-bucket floor((2m−1)·kSubBuckets). `Percentile` answers
/// with the midpoint of the selected sub-bucket, so the relative error of a
/// reported percentile for positive samples is bounded by
/// 1/(2·kSubBuckets) = 6.25% (then clamped into [min, max], which can only
/// shrink the error). tests/obs_test.cc asserts this bound over a sweep.
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;
  static constexpr size_t kSubBuckets = 8;
  /// Documented worst-case relative error of Percentile() for samples > 0.
  static constexpr double kMaxRelativeError = 1.0 / (2.0 * kSubBuckets);

  Histogram() { Reset(); }  // arms the min sentinel

  void Record(double v);
  uint64_t count() const { return count_.Value(); }
  double sum() const { return sum_.Load(); }
  double min() const;
  double max() const { return max_.Load(); }
  double mean() const;
  /// Total count of exponent range `i` (sums its linear sub-buckets).
  uint64_t bucket(size_t i) const;
  /// Value at percentile `p` in [0, 100] (e.g. 50, 90, 99, 99.9); returns 0
  /// on an empty histogram. Error bound: kMaxRelativeError, see above.
  double Percentile(double p) const;
  void Reset();

 private:
  Counter count_;
  AtomicF64 sum_;
  AtomicF64 min_;  // stored negated so StoreMax tracks the minimum
  AtomicF64 max_;
  Counter sub_[kBuckets * kSubBuckets];
};

/// Find-or-create registry of named metrics. Lookups take a mutex — do them
/// once at setup and keep the returned pointer (stable for the process
/// lifetime); never look up per event on an embedded hot path.
class Registry {
 public:
  static Registry& Global();

  // Metric names and span labels surface in exported traces/JSON, outside
  // the token's trust boundary — secret-flow sinks, like the wire encoders.
  // pdslint: sink(GetCounter, GetGauge, GetHistogram, Intern, Span)
  Counter* GetCounter(std::string_view name, std::string_view unit = "count");
  Gauge* GetGauge(std::string_view name, std::string_view unit = "value");
  Histogram* GetHistogram(std::string_view name,
                          std::string_view unit = "value");

  /// Zeroes every registered metric (registration survives).
  void ResetValues();

  /// Flat JSON, BENCH_*.json style: {"records":[{"name","value","unit",...}]}.
  /// Counters export their value; gauges add "max"; histograms export count
  /// as the value plus "sum"/"min"/"max"/"mean".
  void ExportMetricsJson(std::ostream& out) const;
  std::string MetricsJson() const;

  /// One scalar per registered metric (counter value, gauge value, histogram
  /// count), in registration order — the raw material for delta snapshots.
  struct MetricValue {
    std::string name;
    double value = 0;
  };
  std::vector<MetricValue> SnapshotValues() const;

  size_t num_metrics() const;

 private:
  Registry();
  ~Registry();
  struct Impl;
  Impl* impl_;
};

/// Fixed-capacity ring of registry *delta* snapshots: each Capture records
/// which metrics changed since the previous capture (name, absolute value,
/// delta). The ring backs the live `kStats` admin frame — a peer polling the
/// SSI sees both the current registry and the recent per-round movement
/// without the SSI retaining unbounded history.
class SnapshotRing {
 public:
  struct Delta {
    std::string name;
    double value = 0;  // absolute value at capture time
    double delta = 0;  // change since the previous capture
  };
  struct Snapshot {
    uint64_t seq = 0;  // 1-based capture sequence number
    std::vector<Delta> deltas;
  };

  explicit SnapshotRing(size_t capacity = 8);

  /// Diffs `reg` against the last captured values; stores only metrics whose
  /// value moved (first capture: every nonzero metric). Oldest snapshot is
  /// evicted once the ring is full.
  void Capture(const Registry& reg);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t captures() const;
  std::vector<Snapshot> Snapshots() const;

  /// {"captures": N, "snapshots": [{"seq", "deltas": [...]}, ...]}
  void ExportJson(std::ostream& out) const;
  std::string Json() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t captures_ = 0;
  std::map<std::string, double> last_;
  std::vector<Snapshot> ring_;  // ring_[0] oldest
};

/// One completed (or instant) span in the trace buffer. Names and categories
/// are borrowed pointers: string literals or Tracer::Intern results.
struct SpanEvent {
  const char* name = "";
  const char* category = "";
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t id = 0;      // unique per span
  uint64_t parent = 0;  // 0 = root (per thread)
  uint32_t tid = 0;     // dense trace-local thread id
  bool instant = false;
  uint8_t num_args = 0;
  const char* arg_key[2] = {nullptr, nullptr};
  double arg_val[2] = {0, 0};
};

/// Thread-safe hierarchical trace buffer. Storage is preallocated
/// (`SetCapacity`); once full, further spans are counted in `dropped()`
/// instead of allocating — the buffer never grows on the hot path.
class Tracer {
 public:
  static Tracer& Global();

  void SetEnabled(bool on);
  bool enabled() const {
#if PDS_OBS_ENABLED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Record 1 of every `n` root spans (children follow their root). 1 = all.
  void SetSampleEveryN(uint32_t n);

  /// Preallocates space for `events`; also clears the buffer.
  void SetCapacity(size_t events);

  void Clear();
  size_t num_events() const;
  uint64_t dropped() const;
  std::vector<SpanEvent> Events() const;

  /// Zero-duration marker event (Chrome "instant"), e.g. a protocol's
  /// leakage report attached to the timeline.
  void Instant(const char* name, const char* category,
               const char* key0 = nullptr, double val0 = 0,
               const char* key1 = nullptr, double val1 = 0);

  /// Copies `name` into tracer-owned storage and returns a stable pointer;
  /// for span names composed at *setup* time (never per event).
  const char* Intern(std::string_view name);

  /// Chrome trace_event JSON (chrome://tracing, Perfetto, speedscope).
  void ExportChromeTrace(std::ostream& out) const;
  std::string ChromeTraceJson() const;

 private:
  friend class Span;
  Tracer();
  ~Tracer();

  void Append(const SpanEvent& event);

  struct Impl;
  Impl* impl_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> sample_n_{1};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> root_seq_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// Parent carried across a process/transport boundary by the wire
/// trace-context header: the remote span id a local root span should hang
/// under, plus the remote root's sampling decision (which replaces the
/// local root sampler — the remote side already chose keep/drop for the
/// whole distributed trace).
struct RemoteParent {
  uint64_t span_id = 0;
  bool sampled = false;
};

/// RAII span: times a scope and records it into Tracer::Global() with the
/// enclosing span (same thread) as parent. Name/category must outlive the
/// tracer (string literals, or Tracer::Intern at setup).
class Span {
 public:
#if PDS_OBS_ENABLED
  explicit Span(const char* name, const char* category = "app") {
    Begin(name, category, false, RemoteParent{});
  }
  /// Span whose parent arrived over the wire. With an empty local span
  /// stack, `remote.span_id` becomes the parent and `remote.sampled` decides
  /// recording; nested under a local span, behaves like the plain ctor.
  Span(const char* name, const char* category, RemoteParent remote) {
    Begin(name, category, true, remote);
  }
  ~Span() { End(); }

  /// Attaches up to two numeric args, shown in the trace viewer.
  void AddArg(const char* key, double value);

  /// Span id for trace-context propagation; 0 when not recorded (tracer
  /// off, sampled out, or suppressed).
  uint64_t id() const { return recorded_ ? id_ : 0; }

 private:
  void Begin(const char* name, const char* category, bool has_remote,
             RemoteParent remote);
  void End();

  const char* name_ = "";
  const char* category_ = "";
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  bool recorded_ = false;
  bool suppressing_ = false;
  uint8_t num_args_ = 0;
  const char* arg_key_[2] = {nullptr, nullptr};
  double arg_val_[2] = {0, 0};
#else
  explicit Span(const char*, const char* = "app") {}
  Span(const char*, const char*, RemoteParent) {}
  void AddArg(const char*, double) {}
  uint64_t id() const { return 0; }
#endif

 public:
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

}  // namespace pds::obs

#endif  // PDS_OBS_OBS_H_
