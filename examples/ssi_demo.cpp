// The real wire, end to end (tutorial Part III over pds::net).
//
// Six Personal Data Servers, each a full PdsNode with its own flash store
// and access-control policies, connect to one untrusted SSI over TCP
// loopback. Each node's token proves fleet membership in the handshake,
// policy-exports its authorized (city, amount) tuples, and answers the
// [TNP14] secure-aggregation rounds over framed binary messages. The SSI
// sees only ciphertext — and this demo prints exactly what it measured on
// the wire while computing "SELECT city, SUM(amount) GROUP BY city".
//
// After the query it demonstrates the live stats surface: a second TCP
// connection sends the kStats admin frame and prints the JSON snapshot the
// SSI serves back — per-session round-trip percentiles, retry/straggler
// accounting, the metrics registry, and the per-run delta-snapshot ring.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/codec.h"
#include "net/ssi_server.h"
#include "net/token_client.h"
#include "net/transport.h"
#include "pds/pds_node.h"

using pds::embdb::ColumnType;
using pds::embdb::Schema;
using pds::embdb::Tuple;
using pds::embdb::Value;
using pds::net::SocketTransport;
using pds::net::SsiServer;
using pds::net::TcpListener;
using pds::net::TokenClient;

int main() {
  // 1. Provision six PDSs holding electricity bills under owner policies.
  pds::crypto::SymmetricKey fleet_key =
      pds::crypto::KeyFromString("ssi-demo-fleet");
  const char* cities[] = {"lyon", "paris", "nice"};
  pds::Rng rng(7);
  std::vector<std::unique_ptr<pds::node::PdsNode>> nodes;
  for (uint64_t i = 0; i < 6; ++i) {
    pds::node::PdsNode::Config cfg;
    cfg.node_id = 1 + i;
    cfg.fleet_key = fleet_key;  // pdslint: declassify(demo plays the fleet owner provisioning its own tokens)
    cfg.rng_seed = 1 + i;
    auto node = std::make_unique<pds::node::PdsNode>(cfg);
    Schema bills("bills", {{"id", ColumnType::kUint64, ""},
                           {"city", ColumnType::kString, ""},
                           {"amount", ColumnType::kDouble, ""}});
    if (!node->DefineTable(bills).ok()) {
      std::fprintf(stderr, "DefineTable failed\n");
      return 1;
    }
    node->policies().AddRule(
        {"owner", pds::ac::Action::kInsert, "bills", {}, std::nullopt});
    // The stats agency may *share* city and amount — nothing else.
    node->policies().AddRule({"stats-agency", pds::ac::Action::kShare,
                              "bills", {"city", "amount"}, std::nullopt});
    pds::ac::Subject owner{"owner", "user-" + std::to_string(i)};
    for (int r = 0; r < 3; ++r) {
      Tuple t = {Value::U64(static_cast<uint64_t>(r)),
                 Value::Str(cities[rng.Uniform(3)]),
                 Value::F64(40.0 + static_cast<double>(rng.Uniform(120)))};
      if (!node->InsertAs(owner, "bills", t).ok()) {
        std::fprintf(stderr, "InsertAs failed\n");
        return 1;
      }
    }
    nodes.push_back(std::move(node));
  }

  // 2. The SSI listens on TCP loopback. It holds no fleet key itself; a
  //    fleet-provisioned verifier token checks membership proofs for it.
  pds::mcu::SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = fleet_key;  // pdslint: declassify(fleet owner provisions the SSI's verifier token at setup)
  pds::mcu::SecureToken verifier(vcfg);
  SsiServer::Config scfg;
  scfg.partition_capacity = 8;
  scfg.verifier = &verifier;
  SsiServer server(scfg);
  TcpListener listener;
  if (!listener.Listen(0).ok()) {
    std::fprintf(stderr, "Listen failed\n");
    return 1;
  }
  std::printf("SSI listening on 127.0.0.1:%u\n", listener.port());

  // 3. Each PDS dials in, proves membership, and policy-exports its rows.
  std::vector<std::unique_ptr<TokenClient>> clients;
  for (auto& node : nodes) {
    auto conn = SocketTransport::ConnectTcp("127.0.0.1", listener.port(),
                                            2000);
    if (!conn.ok()) {
      std::fprintf(stderr, "ConnectTcp: %s\n",
                   conn.status().ToString().c_str());
      return 1;
    }
    auto accepted = listener.Accept(2000);
    if (!accepted.ok()) {
      std::fprintf(stderr, "Accept: %s\n",
                   accepted.status().ToString().c_str());
      return 1;
    }
    TokenClient::Config ccfg;
    ccfg.pds_node = node.get();
    ccfg.subject = {"stats-agency", "insee"};
    ccfg.table = "bills";
    ccfg.group_column = "city";
    ccfg.value_column = "amount";
    auto client = std::make_unique<TokenClient>(std::move(*conn),
                                                std::move(ccfg));
    client->Start();
    auto session = server.AcceptSession(std::move(*accepted));
    if (!session.ok()) {
      std::fprintf(stderr, "AcceptSession: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(client));
  }
  listener.Close();

  // 4. Run the secure aggregation over the real wire.
  auto output = server.RunSecureAggregation(pds::global::AggFunc::kSum);
  server.Shutdown();
  uint64_t client_frames = 0;
  for (auto& c : clients) {
    c->Stop();
    if (!c->Join().ok()) {
      std::fprintf(stderr, "client exited uncleanly\n");
      return 1;
    }
    client_frames += c->transport().frames_sent() +
                     c->transport().frames_received();
  }
  if (!output.ok()) {
    std::fprintf(stderr, "RunSecureAggregation: %s\n",
                 output.status().ToString().c_str());
    return 1;
  }

  std::printf("\nSELECT city, SUM(amount) GROUP BY city:\n");
  for (const auto& [city, sum] : output->groups) {
    std::printf("  %-8s %.2f\n", city.c_str(), sum);
  }
  const auto& m = output->metrics;
  const auto& report = server.last_report();
  std::printf("\nmeasured on the wire (frame headers included):\n");
  std::printf("  rounds               %llu\n",
              static_cast<unsigned long long>(m.rounds));
  std::printf("  bytes token->SSI     %llu\n",
              static_cast<unsigned long long>(m.bytes_token_to_ssi));
  std::printf("  bytes SSI->token     %llu\n",
              static_cast<unsigned long long>(m.bytes_ssi_to_token));
  std::printf("  frames (client side) %llu\n",
              static_cast<unsigned long long>(client_frames));
  std::printf("  responders           %zu/%zu, %llu retries, %llu timeouts\n",
              report.responders, report.sessions,
              static_cast<unsigned long long>(report.retries),
              static_cast<unsigned long long>(report.deadline_hits));
  std::printf("\nwhat the SSI learned: %s\n",
              output->leakage.plaintext_groups_visible
                  ? "plaintext groups (should never happen here!)"
                  : "ciphertext only — groups decrypted inside tokens");

  // 5. The live stats surface: per-session tail latencies straight from the
  //    server, then the same document over the wire via the kStats admin
  //    frame on a fresh TCP connection (read-only, no attestation needed).
  std::printf("\nper-session round-trip latency (microseconds):\n");
  std::printf("  %-8s %6s %9s %9s %9s %9s\n", "token", "rts", "p50", "p90",
              "p99", "p999");
  for (const auto& t : server.Telemetry()) {
    std::printf("  %-8llu %6llu %9.1f %9.1f %9.1f %9.1f\n",
                static_cast<unsigned long long>(t.token_id),
                static_cast<unsigned long long>(t.round_trips), t.rtt_p50_us,
                t.rtt_p90_us, t.rtt_p99_us, t.rtt_p999_us);
  }

  TcpListener stats_listener;
  if (!stats_listener.Listen(0).ok()) {
    std::fprintf(stderr, "stats Listen failed\n");
    return 1;
  }
  auto admin = SocketTransport::ConnectTcp("127.0.0.1",
                                           stats_listener.port(), 2000);
  auto stats_end = stats_listener.Accept(2000);
  if (!admin.ok() || !stats_end.ok()) {
    std::fprintf(stderr, "stats connection failed\n");
    return 1;
  }
  // The request is buffered by the kernel, so one thread suffices: send,
  // let the server answer, read the reply.
  if (!(*admin)->Send(pds::net::EncodeStatsRequest()).ok()) {
    std::fprintf(stderr, "stats request failed\n");
    return 1;
  }
  if (!server.ServeStats(stats_end->get()).ok()) {
    std::fprintf(stderr, "ServeStats failed\n");
    return 1;
  }
  auto stats_frame = (*admin)->Recv(2000);
  if (!stats_frame.ok()) {
    std::fprintf(stderr, "stats reply failed\n");
    return 1;
  }
  auto stats = pds::net::DecodeAs<pds::net::StatsReplyMsg>(*stats_frame);
  if (!stats.ok()) {
    std::fprintf(stderr, "stats decode failed\n");
    return 1;
  }
  std::printf(
      "\nkStats reply over the wire: %zu bytes of JSON "
      "(sessions + fleet percentiles + registry + snapshot ring)\n",
      stats->json.size());
  // Print just the fleet summary line so the demo stays readable; the full
  // document is what a dashboard would poll.
  size_t fleet_at = stats->json.find("\"fleet\"");
  if (fleet_at != std::string::npos) {
    size_t end = stats->json.find('}', fleet_at);
    std::printf("  %s\n",
                stats->json.substr(fleet_at, end - fleet_at + 1).c_str());
  }
  return 0;
}
