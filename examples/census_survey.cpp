// Global queries over a fleet of Personal Data Servers (tutorial Part III).
//
// A statistics agency wants "SELECT city, AVG(energy_bill) GROUP BY city"
// over thousands of households, each holding its own data in its own
// secure token. The untrusted Supporting Server Infrastructure (SSI)
// coordinates — and we print what it actually *learned* under each
// protocol of the [TNP14] family, plus a k-anonymous microdata release
// via the MetaP-style protocol.

#include <cstdio>
#include <memory>

#include "anon/metap.h"
#include "global/agg_protocols.h"
#include "workloads/census.h"

using pds::global::AggFunc;
using pds::global::AggOutput;
using pds::global::AggregationProtocol;
using pds::global::Participant;
using pds::global::PlainAggregate;
using pds::global::SourceTuple;
using pds::mcu::SecureToken;

int main() {
  // 1. Provision 200 household tokens with the fleet key.
  pds::crypto::SymmetricKey fleet =
      pds::crypto::KeyFromString("national-survey-fleet");
  std::vector<std::unique_ptr<SecureToken>> tokens;
  std::vector<Participant> fleet_participants;
  pds::Rng rng(2026);
  const char* cities[] = {"lyon", "paris", "lille", "nantes", "nice"};
  for (uint64_t i = 0; i < 200; ++i) {
    SecureToken::Config cfg;
    cfg.token_id = i;
    cfg.fleet_key = fleet;
    tokens.push_back(std::make_unique<SecureToken>(cfg));
    Participant p;
    p.token = tokens.back().get();
    // Each household contributes one tuple: (city, monthly energy bill).
    SourceTuple t;
    t.group = cities[rng.Uniform(5)];
    t.value = 40.0 + static_cast<double>(rng.Uniform(120));
    p.tuples.push_back(t);
    fleet_participants.push_back(std::move(p));
  }

  auto truth = PlainAggregate(fleet_participants, AggFunc::kAvg);
  std::printf("ground truth (never leaves the tokens in the clear):\n");
  for (auto& [city, avg] : truth) {
    std::printf("  %-8s avg bill %.2f\n", city.c_str(), avg);
  }

  // 2. Run each protocol and compare cost vs. leakage.
  pds::global::SecureAggProtocol secure_agg({/*partition_capacity=*/64});
  pds::global::WhiteNoiseProtocol white_noise({/*noise_ratio=*/0.3});
  pds::global::DomainNoiseProtocol domain_noise(
      {{"lyon", "paris", "lille", "nantes", "nice", "metz", "brest"},
       /*fakes_per_value=*/2});
  pds::global::HistogramProtocol histogram({/*num_buckets=*/3});

  AggregationProtocol* protocols[] = {&secure_agg, &white_noise,
                                      &domain_noise, &histogram};

  std::printf("\n%-14s %10s %10s %8s %10s %12s %10s\n", "protocol",
              "token-ops", "bytes", "rounds", "classes", "max-class",
              "entropy");
  for (AggregationProtocol* protocol : protocols) {
    auto output = protocol->Execute(fleet_participants, AggFunc::kAvg);
    if (!output.ok()) {
      std::printf("%-14s failed: %s\n",
                  std::string(protocol->name()).c_str(),
                  output.status().ToString().c_str());
      continue;
    }
    // Verify against ground truth.
    bool correct = output->groups.size() == truth.size();
    for (auto& [city, avg] : truth) {
      correct = correct && output->groups.count(city) &&
                std::abs(output->groups[city] - avg) < 1e-6;
    }
    std::printf("%-14s %10llu %10llu %8llu %10llu %11.1f%% %9.2fb  %s\n",
                std::string(protocol->name()).c_str(),
                static_cast<unsigned long long>(
                    output->metrics.token_crypto_ops),
                static_cast<unsigned long long>(output->metrics.bytes),
                static_cast<unsigned long long>(output->metrics.rounds),
                static_cast<unsigned long long>(
                    output->leakage.distinct_classes),
                100.0 * output->leakage.MaxClassFraction(),
                output->leakage.ClassEntropyBits(),
                correct ? "OK" : "WRONG");
  }
  std::printf("  (classes = equality classes the curious SSI could form;\n"
              "   secure-agg: every tuple distinct -> SSI learns nothing)\n");

  // 3. MetaP-style k-anonymous publication of census microdata.
  pds::workloads::CensusConfig census_cfg;
  census_cfg.num_records = 200;
  auto records = pds::workloads::GenerateCensus(census_cfg);
  std::vector<pds::anon::MetapParticipant> publishers;
  for (uint64_t i = 0; i < 200; ++i) {
    pds::anon::MetapParticipant p;
    p.token = tokens[i].get();
    p.records.push_back(records[i]);
    publishers.push_back(std::move(p));
  }
  pds::anon::KAnonymizer::Options anon_opts;
  anon_opts.k = 5;
  pds::anon::MetapProtocol metap(pds::workloads::CensusHierarchies(),
                                 anon_opts);
  auto published = metap.Publish(publishers);
  if (published.ok()) {
    std::printf("\nMetaP k=5 release: %zu records published, %llu "
                "suppressed, %u classes, info loss %.2f, %u strategies "
                "tried, SSI saw plaintext: %s\n",
                published->result.published.size(),
                static_cast<unsigned long long>(published->result.suppressed),
                published->result.num_classes,
                published->result.information_loss,
                published->strategies_tried,
                published->leakage.plaintext_groups_visible ? "YES" : "no");
    std::printf("sample rows (age-range, zip-prefix, diagnosis):\n");
    for (size_t i = 0; i < 5 && i < published->result.published.size();
         ++i) {
      const auto& r = published->result.published[i];
      std::printf("  %-10s %-8s %s\n", r.quasi_identifiers[0].c_str(),
                  r.quasi_identifiers[1].c_str(), r.sensitive.c_str());
    }
  }
  return 0;
}
