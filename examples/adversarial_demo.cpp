// The adversarial wire, end to end: the scenario harness from pds::net run
// as a command-line tool.
//
// A four-token fleet (plus a querier/verifier token) faces every cell of
// the default scenario matrix: each [TNP14] protocol and the packed
// Paillier round under benign links, seed-driven drops, delays,
// duplicates, reorders, truncation and bit flips, then a malicious SSI
// that tampers with sealed batches, forges aggregates, replays stale
// rounds and sends oversized/malformed frames, and finally a token that
// churns mid-round and rejoins through a fresh attestation handshake.
//
// For every cell the tool prints the verdict: benign cells must be
// byte-identical to the in-process protocols, adversarial cells must be
// detected. The per-scenario verdict JSON (the same `fault_scenarios`
// record net_bench emits) and the realized fault-injection logs are
// written to files for CI artifacts; the process exits non-zero if any
// guarantee fails.
//
//   build/examples/adversarial_demo [--seed N] [--socket]
//                                   [--json FILE] [--faultlog FILE]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/paillier.h"
#include "net/scenario.h"

using pds::Rng;
using pds::crypto::PackedAggregate;
using pds::crypto::Paillier;
using pds::global::Participant;
using pds::global::SourceTuple;
using pds::mcu::SecureToken;
using pds::net::DefaultMatrix;
using pds::net::MatrixJson;
using pds::net::RunScenarioCell;
using pds::net::ScenarioResult;
using pds::net::ScenarioSpec;

int main(int argc, char** argv) {
  uint64_t seed = 7;
  bool use_socket = false;
  std::string json_path = "adversarial_verdicts.json";
  std::string faultlog_path = "adversarial_faultlog.txt";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      use_socket = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--faultlog") == 0 && i + 1 < argc) {
      faultlog_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: adversarial_demo [--seed N] [--socket] "
                   "[--json FILE] [--faultlog FILE]\n");
      return 2;
    }
  }

  // 1. A deterministic fleet: four tokens with authorized (city, value)
  // tuples, one querier/verifier token, and the shared packed context.
  pds::crypto::SymmetricKey fleet_key =
      pds::crypto::KeyFromString("adversarial-demo-fleet");
  std::vector<std::unique_ptr<SecureToken>> tokens;
  std::vector<Participant> participants;
  Rng rng(55);
  for (uint64_t i = 0; i < 4; ++i) {
    SecureToken::Config cfg;
    cfg.token_id = i;
    cfg.fleet_key = fleet_key;
    cfg.rng_seed = 100 + i;
    tokens.push_back(std::make_unique<SecureToken>(cfg));
    Participant p;
    p.token = tokens.back().get();
    int n = 3 + static_cast<int>(rng.Uniform(4));
    for (int t = 0; t < n; ++t) {
      SourceTuple st;
      st.group = "city-" + std::to_string(rng.Uniform(5));
      st.value = static_cast<double>(rng.Uniform(100));
      p.tuples.push_back(std::move(st));
    }
    participants.push_back(std::move(p));
  }
  SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = fleet_key;
  SecureToken verifier(vcfg);

  std::vector<std::string> domain;
  for (int i = 0; i < 5; ++i) domain.push_back("city-" + std::to_string(i));
  Rng key_rng(42);
  auto paillier = Paillier::Generate(256, &key_rng);
  if (!paillier.ok()) {
    std::fprintf(stderr, "Paillier::Generate failed\n");
    return 1;
  }
  auto packed = PackedAggregate::Create(*paillier, tokens.size(),
                                        /*max_value=*/4096,
                                        2 * domain.size());
  if (!packed.ok()) {
    std::fprintf(stderr, "PackedAggregate::Create failed\n");
    return 1;
  }
  pds::global::PackedPaillierProtocol::Config packed_cfg;
  packed_cfg.domain = domain;
  packed_cfg.max_slot_value = 4096;
  packed_cfg.paillier_bits = 256;
  packed_cfg.key_seed = 42;

  // 2. Every cell of the matrix, in order. A failing guarantee prints the
  // seed and the realized injection log — rerunning with the same --seed
  // replays the identical fault sequence.
  std::printf("adversarial scenario matrix (seed %llu, %s transport)\n",
              static_cast<unsigned long long>(seed),
              use_socket ? "unix-socket" : "in-process");
  std::vector<ScenarioResult> results;
  std::string fault_log;
  int failures = 0;
  for (ScenarioSpec& spec : DefaultMatrix(seed, use_socket)) {
    spec.participants = participants;
    spec.verifier = &verifier;
    spec.domain = domain;
    spec.packed = &packed.value();
    spec.packed_cfg = packed_cfg;
    auto cell = RunScenarioCell(spec);
    if (!cell.ok()) {
      std::printf("  %-36s HARNESS ERROR: %s\n", spec.name.c_str(),
                  cell.status().ToString().c_str());
      ++failures;
      continue;
    }
    const ScenarioResult& r = cell.value();
    bool cell_ok = (!r.benign || (r.ran_ok && r.byte_identical)) &&
                   (!r.expects_detection || r.detected);
    const char* verdict = cell_ok ? "ok" : "FAILED";
    if (r.benign) {
      std::printf("  %-36s %-6s byte-identical=%d\n", r.name.c_str(),
                  verdict, r.byte_identical ? 1 : 0);
    } else if (r.expects_detection) {
      std::printf("  %-36s %-6s detected=%d  %s\n", r.name.c_str(), verdict,
                  r.detected ? 1 : 0, r.detection.c_str());
    } else {
      std::printf("  %-36s %-6s byte-identical=%d injections=%llu\n",
                  r.name.c_str(), verdict, r.byte_identical ? 1 : 0,
                  static_cast<unsigned long long>(r.injections));
    }
    if (!cell_ok) {
      ++failures;
      std::printf("    error: %s\n    injection log:\n%s", r.error.c_str(),
                  r.injection_log.c_str());
    }
    if (!r.injection_log.empty()) {
      fault_log += "=== " + r.name + " (seed " + std::to_string(seed) +
                   ") ===\n" + r.injection_log;
    }
    results.push_back(std::move(cell).value());
  }

  // 3. Artifacts: the verdict record (net_bench's fault_scenarios shape)
  // and the concatenated injection logs.
  std::ofstream json_out(json_path, std::ios::binary);
  json_out << "{\"fault_scenarios\": " << MatrixJson(results) << "}\n";
  json_out.close();
  std::ofstream log_out(faultlog_path, std::ios::binary);
  log_out << fault_log;
  log_out.close();
  std::printf("\n%zu cells, %d failing; wrote %s and %s\n", results.size(),
              failures, json_path.c_str(), faultlog_path.c_str());
  return failures == 0 ? 0 : 1;
}
