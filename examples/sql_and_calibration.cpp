// The developer-facing surfaces added on top of the tutorial's core: the
// embedded-SQL subset with its index-aware planner, and the RAM co-design
// calibrator that answers "how much MCU RAM does my workload need?" — the
// tutorial's open question ("How to calibrate the HW (RAM) to data
// oriented treatments?").

#include <cstdio>

#include "common/rng.h"
#include "embdb/database.h"
#include "flash/flash.h"
#include "mcu/calibration.h"
#include "mcu/ram_gauge.h"

using pds::embdb::ColumnType;
using pds::embdb::Database;
using pds::embdb::Schema;
using pds::embdb::Tuple;
using pds::embdb::Value;

int main() {
  pds::flash::Geometry geometry;
  geometry.page_size = 2048;
  geometry.pages_per_block = 64;
  geometry.block_count = 512;
  pds::flash::FlashChip chip(geometry);
  pds::mcu::RamGauge gauge(64 * 1024);
  Database db(&chip, &gauge);

  Schema purchases("purchases", {{"id", ColumnType::kUint64, ""},
                                 {"store", ColumnType::kString, ""},
                                 {"category", ColumnType::kString, ""},
                                 {"amount", ColumnType::kDouble, ""}});
  (void)db.CreateTable(purchases, {});
  (void)db.CreateKeyIndex("purchases", "store", {});

  const char* stores[] = {"grocer", "pharmacy", "bookshop", "bakery"};
  const char* categories[] = {"food", "health", "culture"};
  pds::Rng rng(4);
  for (uint64_t i = 0; i < 500; ++i) {
    Tuple t = {Value::U64(i), Value::Str(stores[rng.Uniform(4)]),
               Value::Str(categories[rng.Uniform(3)]),
               Value::F64(static_cast<double>(rng.Uniform(20000)) / 100.0)};
    (void)db.Insert("purchases", t);
  }

  const char* queries[] = {
      "SELECT * FROM purchases WHERE amount > 195.0",
      "SELECT category, amount FROM purchases WHERE store = 'pharmacy' "
      "AND amount >= 100.0",
      "SELECT id FROM purchases WHERE store = 'bakery' AND "
      "category = 'food'",
  };
  for (const char* sql : queries) {
    std::printf("\n> %s\n", sql);
    chip.ResetStats();
    int rows = 0;
    pds::Status s = db.Query(sql, [&](const Tuple& t) {
      if (rows < 3) {
        std::printf("  ");
        for (const Value& v : t) {
          std::printf("%s  ", v.ToString().c_str());
        }
        std::printf("\n");
      }
      ++rows;
      return pds::Status::Ok();
    });
    if (!s.ok()) {
      std::printf("  error: %s\n", s.ToString().c_str());
      continue;
    }
    std::printf("  ... %d rows, %llu flash reads%s\n", rows,
                static_cast<unsigned long long>(chip.stats().page_reads),
                sql[30] == 's' ? "" : "");
  }

  // RAM co-design: what budget does this class of workload actually need?
  pds::mcu::WorkloadProfile profile;
  profile.page_size = geometry.page_size;
  profile.search_keywords = 5;
  profile.largest_index_entries = 1 << 20;
  profile.spj_max_rowids_per_selection = 2048;
  profile.aggregation_groups = 128;

  std::printf("\nRAM calibration for this workload profile:\n");
  std::printf("  %-22s %10s  %s\n", "treatment", "bytes", "formula");
  for (const auto& r : pds::mcu::CalibrateRam(profile)) {
    std::printf("  %-22s %10zu  %s\n", r.treatment.c_str(), r.bytes,
                r.formula.c_str());
  }
  std::printf("  recommended MCU RAM budget: %zu KB\n",
              pds::mcu::RecommendedRamBudget(profile) / 1024);
  return 0;
}
