// A million-token [TNP14] round on a laptop: the deterministic fleet
// simulator from pds::sim run as a command-line tool.
//
// The demo builds a SimFleet — the REAL net::SsiServer and one REAL
// net::TokenClient + mcu::SecureToken per simulated token, wired over
// SimTransport links with a WAN-ish latency/jitter/bandwidth model — and
// replays one seeded secure-aggregation GROUP-BY round over it. Everything
// runs in a single process on virtual time: the server's blocking Recv
// calls drive the discrete-event queue, tokens answer from delivery
// callbacks, and the whole run is a pure function of the seed. Run it
// twice with the same seed and every group sum, byte count, and virtual
// timestamp repeats exactly.
//
//   build/examples/sim_demo [--tokens N] [--seed N] [--groups N]
//
// Defaults replay the headline scenario: 1,000,000 tokens, seed 55,
// 5 GROUP-BY cities. Expect ~30 s of wall time and a few GiB of RSS at
// that size; try --tokens 10000 for an instant smoke run.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "global/common.h"
#include "sim/link_model.h"
#include "sim/sim_fleet.h"

using pds::global::AggFunc;
using pds::sim::LinkModel;
using pds::sim::SimFleet;
using pds::sim::SimFleetConfig;

int main(int argc, char** argv) {
  size_t num_tokens = 1000000;
  uint64_t seed = 55;
  size_t num_groups = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
      num_tokens = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--groups") == 0 && i + 1 < argc) {
      num_groups = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--tokens N] [--seed N] [--groups N]\n",
                   argv[0]);
      return 2;
    }
  }

  SimFleetConfig cfg;
  cfg.num_tokens = num_tokens;
  cfg.seed = seed;
  cfg.num_groups = num_groups;
  cfg.link.base_latency_us = 2000;  // a 2 ms one-way WAN hop...
  cfg.link.jitter_us = 1000;        // ...with up to 1 ms of jitter
  cfg.link.bandwidth_bytes_per_sec = 12500000;  // 100 Mbit/s per link

  std::printf("sim_demo: %zu tokens, seed %" PRIu64 ", %zu groups\n",
              num_tokens, seed, num_groups);
  std::printf("  link: %" PRIu64 " us latency, %" PRIu64
              " us jitter, %.0f Mbit/s\n",
              cfg.link.base_latency_us, cfg.link.jitter_us,
              cfg.link.bandwidth_bytes_per_sec * 8 / 1e6);

  SimFleet fleet(cfg);
  auto t0 = std::chrono::steady_clock::now();
  if (auto st = fleet.Build(); !st.ok()) {
    std::fprintf(stderr, "sim_demo: build failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  auto t1 = std::chrono::steady_clock::now();
  std::printf("  built + attested %zu sessions in %.1f s (wall)\n",
              num_tokens,
              std::chrono::duration<double>(t1 - t0).count());

  auto output = fleet.RunSecureAggregation(AggFunc::kSum);
  auto t2 = std::chrono::steady_clock::now();
  if (!output.ok()) {
    std::fprintf(stderr, "sim_demo: round failed: %s\n",
                 output.status().ToString().c_str());
    return 1;
  }
  if (fleet.pump_errors() != 0) {
    std::fprintf(stderr, "sim_demo: %zu token pump errors\n",
                 fleet.pump_errors());
    return 1;
  }

  std::printf("\nGROUP-BY result (SUM per city):\n");
  for (const auto& [group, value] : output->groups) {
    std::printf("  %-10s %14.0f\n", group.c_str(), value);
  }

  const auto& report = fleet.server().last_report();
  const auto& stats = fleet.net().stats();
  auto mem = fleet.Memory();
  std::printf("\nround: %zu/%zu responders, %" PRIu64 " tuples\n",
              report.responders, num_tokens, fleet.total_tuples());
  std::printf("wire:  %" PRIu64 " frames, %" PRIu64 " bytes\n",
              stats.frames_delivered, stats.bytes_delivered);
  std::printf("time:  %.1f s virtual, %.1f s wall (round only)\n",
              fleet.clock().NowNs() / 1e9,
              std::chrono::duration<double>(t2 - t1).count());
  std::printf("mem:   ~%" PRIu64 " bytes/token estimated",
              mem.bytes_per_token);
  if (mem.vm_hwm_kb > 0) {
    std::printf(", %.2f GiB peak RSS", mem.vm_hwm_kb / (1024.0 * 1024.0));
  }
  std::printf("\nevents: %" PRIu64 " run on the virtual clock\n",
              fleet.clock().events_run());
  std::printf("\nre-run with the same --seed to replay this byte-for-byte\n");
  return 0;
}
