// Quickstart: a complete Personal Data Server in ~100 lines.
//
// Creates a PDS node (secure token + NAND flash + embedded database +
// access control), loads some personal records, and shows how different
// subjects see different slices of the data — with every decision audited.

#include <cstdio>

#include "pds/pds_node.h"

using pds::ac::Action;
using pds::ac::Subject;
using pds::embdb::ColumnType;
using pds::embdb::Predicate;
using pds::embdb::Schema;
using pds::embdb::Tuple;
using pds::embdb::Value;
using pds::node::PdsNode;

int main() {
  // 1. Provision the token: fleet key, 64 KB RAM, a 16 MB flash chip.
  PdsNode::Config config;
  config.node_id = 1;
  config.fleet_key = pds::crypto::KeyFromString("demo-fleet-secret");
  config.flash_geometry.page_size = 2048;
  config.flash_geometry.pages_per_block = 64;
  config.flash_geometry.block_count = 128;
  PdsNode node(config);

  // 2. Define the owner's "records" table.
  Schema records("records", {{"id", ColumnType::kUint64, ""},
                             {"category", ColumnType::kString, ""},
                             {"detail", ColumnType::kString, ""},
                             {"cost", ColumnType::kDouble, ""}});
  if (auto s = node.DefineTable(records); !s.ok()) {
    std::printf("DefineTable failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Declare simple privacy rules: the owner reads/writes everything,
  //    the doctor reads only medical rows.
  node.policies().AddRule(
      {"owner", Action::kInsert, "records", {}, std::nullopt});
  node.policies().AddRule(
      {"owner", Action::kRead, "records", {}, std::nullopt});
  Predicate medical_only{1, Predicate::Op::kEq, Value::Str("medical")};
  node.policies().AddRule(
      {"doctor", Action::kRead, "records", {}, medical_only});

  // 4. The owner loads her data.
  Subject alice{"owner", "alice"};
  struct Row {
    const char* category;
    const char* detail;
    double cost;
  };
  Row rows[] = {{"medical", "flu consultation", 40.0},
                {"medical", "chest x-ray", 120.0},
                {"bank", "mortgage payment", 1250.0},
                {"telco", "monthly plan", 19.99}};
  uint64_t id = 0;
  for (const Row& r : rows) {
    auto rowid = node.InsertAs(alice, "records",
                               {Value::U64(++id), Value::Str(r.category),
                                Value::Str(r.detail), Value::F64(r.cost)});
    if (!rowid.ok()) {
      std::printf("insert failed: %s\n", rowid.status().ToString().c_str());
      return 1;
    }
  }

  // 5. The owner sees everything; the doctor only the medical rows; a
  //    stranger is denied outright.
  auto print_rows = [](const char* who) {
    std::printf("\n-- query as %s --\n", who);
    return [](const Tuple& t) {
      std::printf("  %-3s %-10s %-20s %8.2f\n", t[0].ToString().c_str(),
                  t[1].AsStr().c_str(), t[2].AsStr().c_str(), t[3].AsF64());
      return pds::Status::Ok();
    };
  };

  (void)node.QueryAs(alice, "records", {}, {}, print_rows("alice (owner)"));
  (void)node.QueryAs({"doctor", "dr-lucas"}, "records", {}, {},
                     print_rows("dr-lucas (doctor)"));
  pds::Status denied =
      node.QueryAs({"advertiser", "acme"}, "records", {}, {},
                   [](const Tuple&) { return pds::Status::Ok(); });
  std::printf("\n-- query as acme (advertiser) --\n  %s\n",
              denied.ToString().c_str());

  // 6. Accountability: the audit trail survives on flash.
  auto log = node.ReadAuditLog();
  std::printf("\n-- audit log (%zu entries) --\n",
              log.ok() ? log->size() : 0);
  if (log.ok()) {
    for (const std::string& line : *log) {
      std::printf("  %s\n", line.c_str());
    }
  }

  std::printf("\nflash: %s\n", node.chip().stats().ToString().c_str());
  std::printf("token RAM high water: %zu bytes of %zu budget\n",
              node.ram().high_water(), node.ram().budget());
  return 0;
}
