// Embedded search engine on a secure token (tutorial Part II).
//
// Indexes a mailbox-like corpus into the log-only inverted index and runs
// top-k TF-IDF queries with the pipeline evaluator — one flash page of RAM
// per query keyword — then contrasts it with the naive evaluator that the
// tutorial rules out ("one container per retrieved docid ... too much!").

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"
#include "search/search_engine.h"

using pds::flash::FlashChip;
using pds::flash::Geometry;
using pds::flash::PartitionAllocator;
using pds::mcu::RamGauge;
using pds::search::EmbeddedSearchEngine;

int main() {
  Geometry geometry;
  geometry.page_size = 2048;
  geometry.pages_per_block = 64;
  geometry.block_count = 256;  // 32 MB chip
  FlashChip chip(geometry);
  PartitionAllocator allocator(&chip);
  RamGauge ram(64 * 1024);  // 64 KB secure-MCU RAM

  auto partition = allocator.Allocate(128);
  if (!partition.ok()) {
    return 1;
  }
  EmbeddedSearchEngine::Options options;
  options.index.num_buckets = 64;
  options.index.insert_buffer_bytes = 4096;
  EmbeddedSearchEngine engine(*partition, &ram, options);
  if (auto s = engine.Init(); !s.ok()) {
    std::printf("init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // A synthetic mailbox: folders-worth of short messages over a small
  // vocabulary with a few "interesting" rare terms.
  const char* common[] = {"meeting", "report",  "budget", "family",
                          "photos",  "invoice", "travel", "project",
                          "lunch",   "schedule"};
  pds::Rng rng(7);
  const int kNumDocs = 3000;
  for (int d = 0; d < kNumDocs; ++d) {
    std::string text;
    int len = 5 + static_cast<int>(rng.Uniform(15));
    for (int w = 0; w < len; ++w) {
      text += std::string(common[rng.Uniform(10)]) + " ";
    }
    if (d % 250 == 0) {
      text += "confidential diagnosis";  // the rare needle
    }
    auto docid = engine.AddDocument(text);
    if (!docid.ok()) {
      std::printf("indexing failed at doc %d: %s\n", d,
                  docid.status().ToString().c_str());
      return 1;
    }
  }
  (void)engine.Flush();
  std::printf("indexed %u documents into %u flash pages\n",
              engine.num_documents(), engine.num_index_pages());

  std::vector<std::vector<std::string>> queries = {
      {"confidential"},
      {"confidential", "diagnosis"},
      {"budget", "meeting", "schedule"},
  };
  for (const auto& query : queries) {
    std::string qstr;
    for (const auto& term : query) {
      qstr += term + " ";
    }
    chip.ResetStats();
    ram.ResetHighWater();
    auto results = engine.Search(query, 5);
    if (!results.ok()) {
      std::printf("query failed: %s\n", results.status().ToString().c_str());
      continue;
    }
    std::printf("\nquery [%s] -> %zu hits, %llu page reads, RAM high water "
                "%zu B\n",
                qstr.c_str(), results->size(),
                static_cast<unsigned long long>(chip.stats().page_reads),
                ram.high_water());
    for (const auto& hit : *results) {
      std::printf("  doc %-6u score %.3f\n", hit.docid, hit.score);
    }
  }

  // The naive evaluator allocates per-docid containers: on a popular term
  // it bursts through the 64 KB budget exactly as the tutorial warns.
  auto naive = engine.SearchNaive({"meeting"}, 5);
  std::printf("\nnaive evaluator on a popular term: %s\n",
              naive.ok() ? "unexpectedly fit in RAM"
                         : naive.status().ToString().c_str());
  auto pipeline = engine.Search({"meeting"}, 5);
  std::printf("pipeline evaluator on the same term: %s (%zu hits)\n",
              pipeline.ok() ? "OK" : pipeline.status().ToString().c_str(),
              pipeline.ok() ? pipeline->size() : 0);
  return 0;
}
