// The tutorial's field experiment: a Personal Social-Medical Folder.
//
// The patient's folder lives on her home personal server (a secure token).
// Practitioners coordinate through a central server that stores only
// encrypted blobs, and a smart badge synchronizes home <-> hospital with
// no network link at all ("Sync via Smart Badges, no data re-entered, no
// network link required").

#include <cstdio>

#include "sync/folder.h"

using pds::crypto::KeyFromString;
using pds::global::Metrics;
using pds::mcu::SecureToken;
using pds::sync::ArchiveServer;
using pds::sync::PersonalFolder;

namespace {

SecureToken MakeToken(uint64_t id) {
  SecureToken::Config cfg;
  cfg.token_id = id;
  cfg.fleet_key = KeyFromString("social-medical-folder-fleet");
  cfg.rng_seed = 1000 + id;
  return SecureToken(cfg);
}

void PrintFolder(const char* where, const PersonalFolder& folder) {
  std::printf("\n[%s] %zu entries:\n", where, folder.entries().size());
  for (const auto& e : folder.entries()) {
    std::printf("  (author %llu, #%llu) %-14s %s\n",
                static_cast<unsigned long long>(e.author),
                static_cast<unsigned long long>(e.seq), e.category.c_str(),
                e.content.c_str());
  }
}

}  // namespace

int main() {
  // Three devices of the patient's care network, one shared folder (id 7).
  SecureToken home_token = MakeToken(1);      // patient's home server
  SecureToken hospital_token = MakeToken(2);  // hospital replica
  SecureToken nurse_token = MakeToken(3);     // visiting nurse's badge

  PersonalFolder home(&home_token, 7);
  PersonalFolder hospital(&hospital_token, 7);
  PersonalFolder nurse(&nurse_token, 7);

  // Day 1: the family doctor visits the patient at home.
  (void)home.AddEntry("prescription", "ramipril 5mg, once daily");
  (void)home.AddEntry("observation", "blood pressure 145/90");

  // Meanwhile the hospital records a lab result.
  (void)hospital.AddEntry("lab-result", "HbA1c 6.1% (ok)");

  PrintFolder("home before sync", home);
  PrintFolder("hospital before sync", hospital);

  // Day 2: the nurse's badge carries the folder home -> hospital and back.
  // No network is involved; the badge sees only ciphertext.
  Metrics badge;
  (void)PersonalFolder::BadgeSync(&home, &nurse, &badge);
  (void)PersonalFolder::BadgeSync(&nurse, &hospital, &badge);
  (void)PersonalFolder::BadgeSync(&hospital, &home, &badge);

  PrintFolder("home after badge sync", home);
  PrintFolder("hospital after badge sync", hospital);
  std::printf("\nbadge transport: %llu blobs, %llu bytes (all encrypted)\n",
              static_cast<unsigned long long>(badge.messages),
              static_cast<unsigned long long>(badge.bytes));

  // Day 3: the home server archives to the central server (encrypted), and
  // a new specialist replica bootstraps from the archive alone.
  ArchiveServer archive;
  Metrics net;
  (void)home.PushTo(&archive, &net);
  std::printf("\narchive now stores %llu encrypted blobs (%llu bytes); the "
              "server never sees a key\n",
              static_cast<unsigned long long>(archive.num_blobs()),
              static_cast<unsigned long long>(archive.bytes_stored()));

  SecureToken specialist_token = MakeToken(4);
  PersonalFolder specialist(&specialist_token, 7);
  (void)specialist.PullFrom(archive, &net);
  PrintFolder("specialist bootstrapped from archive", specialist);

  return 0;
}
