// Regression tests pinning the experiment *shapes* that EXPERIMENTS.md
// reports — if a change to the structures breaks a paper-level claim, these
// fail even though all functional tests still pass.

#include <gtest/gtest.h>

#include <memory>

#include <chrono>

#include "common/rng.h"
#include "crypto/paillier.h"
#include "embdb/database.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"
#include "mcu/secure_token.h"

namespace pds {
namespace {

using embdb::ColumnType;
using embdb::Database;
using embdb::KeyLogIndex;
using embdb::Predicate;
using embdb::Schema;
using embdb::Tuple;
using embdb::Value;

flash::Geometry PaperGeometry() {
  flash::Geometry g;
  g.page_size = 2048;
  g.pages_per_block = 64;
  g.block_count = 2048;
  return g;
}

// E1's headline: on a table of several hundred data pages, an indexed
// selective lookup costs an order of magnitude fewer IOs than the scan
// (tutorial: 17 vs 640).
TEST(ExperimentShapeTest, E1_SummaryScanBeatsTableScanByAnOrderOfMagnitude) {
  flash::FlashChip chip(PaperGeometry());
  mcu::RamGauge gauge(256 * 1024);
  Database db(&chip, &gauge);

  Schema customer("customer", {{"id", ColumnType::kUint64, ""},
                               {"name", ColumnType::kString, ""},
                               {"city", ColumnType::kString, ""}});
  Database::TableOptions topts;
  topts.data_blocks = 512;
  topts.directory_blocks = 32;
  ASSERT_TRUE(db.CreateTable(customer, topts).ok());
  Database::IndexOptions iopts;
  iopts.keys_blocks = 64;
  iopts.bloom_blocks = 16;
  ASSERT_TRUE(db.CreateKeyIndex("customer", "city", iopts).ok());

  // ~640 data pages worth of rows, selective predicate (1/1000 cities).
  Rng rng(1);
  const uint64_t rows = 25000;
  for (uint64_t i = 0; i < rows; ++i) {
    Tuple t = {Value::U64(i),
               Value::Str("customer-name-padding-padding-" +
                          std::to_string(i)),
               Value::Str("city-" + std::to_string(rng.Uniform(1000)))};
    ASSERT_TRUE(db.Insert("customer", t).ok());
  }
  uint32_t table_pages = db.table("customer")->num_data_pages();
  ASSERT_GT(table_pages, 400u);

  // Scan cost.
  chip.ResetStats();
  Predicate p{2, Predicate::Op::kEq, Value::Str("city-7")};
  uint64_t scan_matches = 0;
  ASSERT_TRUE(db.SelectScan("customer", {p},
                            [&](uint64_t, const Tuple&) {
                              ++scan_matches;
                              return Status::Ok();
                            })
                  .ok());
  uint64_t scan_reads = chip.stats().page_reads;

  // Index lookup cost (rowids only, as in the slide).
  KeyLogIndex* index = db.key_index("customer", "city");
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  chip.ResetStats();
  ASSERT_TRUE(index->Lookup(Value::Str("city-7"), &rowids, &stats).ok());
  uint64_t index_reads = chip.stats().page_reads;

  EXPECT_EQ(rowids.size(), scan_matches);
  // Order-of-magnitude gap, as in "17 vs 640".
  EXPECT_GE(scan_reads, index_reads * 10);
  // And the slide's cost formula: |Log2| + hit pages (+ false positives).
  EXPECT_EQ(index_reads,
            stats.summary_pages + stats.key_pages);
}

// E4's headline: the reorganized tree answers in O(height) IOs while the
// key log costs a full summary scan, and the gap widens with size.
TEST(ExperimentShapeTest, E4_TreeLookupFlatKeyLogLinear) {
  flash::FlashChip chip(PaperGeometry());
  mcu::RamGauge gauge(64 * 1024);
  flash::PartitionAllocator alloc(&chip);

  auto measure = [&](uint64_t entries, double* keylog_reads,
                     double* tree_reads) {
    auto keys = alloc.Allocate(256);
    auto bloom = alloc.Allocate(64);
    ASSERT_TRUE(keys.ok());
    ASSERT_TRUE(bloom.ok());
    embdb::KeyLogIndex source(*keys, *bloom, &gauge, {});
    ASSERT_TRUE(source.Init().ok());
    Rng rng(3);
    for (uint64_t i = 0; i < entries; ++i) {
      ASSERT_TRUE(source.Insert(Value::U64(rng.Next()), i).ok());
    }
    auto tree = embdb::Reorganizer::Reorganize(&source, &alloc, &gauge, {});
    ASSERT_TRUE(tree.ok());

    std::vector<uint64_t> rowids;
    embdb::KeyLogIndex::LookupStats kstats;
    embdb::TreeIndex::LookupStats tstats;
    uint64_t kl = 0, tr = 0;
    Rng probe(5);
    const int kProbes = 50;
    for (int i = 0; i < kProbes; ++i) {
      uint64_t key = probe.Next();
      chip.ResetStats();
      ASSERT_TRUE(source.Lookup(Value::U64(key), &rowids, &kstats).ok());
      kl += chip.stats().page_reads;
      chip.ResetStats();
      ASSERT_TRUE(tree->Lookup(Value::U64(key), &rowids, &tstats).ok());
      tr += chip.stats().page_reads;
    }
    *keylog_reads = static_cast<double>(kl) / kProbes;
    *tree_reads = static_cast<double>(tr) / kProbes;
  };

  double kl_small, tr_small, kl_big, tr_big;
  measure(10000, &kl_small, &tr_small);
  measure(80000, &kl_big, &tr_big);

  // Key log degrades roughly linearly; the tree stays flat and small.
  EXPECT_GT(kl_big, kl_small * 4);
  EXPECT_LE(tr_big, tr_small + 1.5);
  EXPECT_LE(tr_big, 5.0);
}

// E6's headline: the crypto ladder spans orders of magnitude per rung.
TEST(ExperimentShapeTest, E6_CryptoLadderOrdersOfMagnitude) {
  // The tutorial's "generic crypto is (incredibly) expensive" rung is the
  // naive schoolbook path (EncryptScalar): one 256-bit modexp over a
  // 512-bit modulus versus ~1e3 AES table lookups — verify via timing
  // ratios with generous slack. The kernel-accelerated Encrypt (fixed-base
  // Montgomery cache) deliberately shrinks that gap; assert it stays
  // strictly cheaper than the scalar rung it replaces.
  mcu::SecureToken::Config cfg;
  cfg.fleet_key = crypto::KeyFromString("ladder");
  mcu::SecureToken token(cfg);
  Rng rng(7);
  auto paillier = crypto::Paillier::Generate(256, &rng);
  ASSERT_TRUE(paillier.ok());

  Bytes payload(64, 0x5A);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(token.EncryptNonDet(ByteView(payload)).ok());
  }
  auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(paillier->EncryptScalar(crypto::BigInt(12345), &rng).ok());
  }
  auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(paillier->EncryptU64(12345, &rng).ok());
  }
  auto t3 = std::chrono::steady_clock::now();

  double aes_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / 200;
  double scalar_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / 20;
  double cached_us =
      std::chrono::duration<double, std::micro>(t3 - t2).count() / 20;
  // The paper's point only needs a large, robust gap.
  EXPECT_GT(scalar_us, aes_us * 20)
      << "aes=" << aes_us << "us paillier-scalar=" << scalar_us << "us";
  EXPECT_LT(cached_us, scalar_us)
      << "fixed-base cache should beat the scalar path: cached=" << cached_us
      << "us scalar=" << scalar_us << "us";
}

}  // namespace
}  // namespace pds
