// pds::net end-to-end: transports (in-process, Unix socketpair, TCP
// loopback), the SsiServer/TokenClient handshake, and the secure
// aggregation protocol over the real wire — byte-identical results to the
// in-process protocol, measured framed-byte accounting, and quorum /
// timeout / retry behaviour with dropped or flaky tokens.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/rng.h"
#include "global/agg_protocols.h"
#include "net/ssi_server.h"
#include "net/token_client.h"
#include "obs/obs.h"
#include "pds/pds_node.h"

namespace pds::net {
namespace {

using global::AggFunc;
using global::Participant;
using global::SourceTuple;

// ---------------------------------------------------------------------------
// Transports

TEST(NetTransportTest, InProcessPairDelivers) {
  auto [a, b] = InProcessTransport::CreatePair();
  Bytes frame = EncodeBye();
  ASSERT_TRUE(a->Send(frame).ok());
  auto got = b->Recv(1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ByteView(*got), ByteView(frame));
  EXPECT_EQ(a->bytes_sent(), frame.size());
  EXPECT_EQ(b->bytes_received(), frame.size());
  EXPECT_EQ(a->frames_sent(), 1u);
}

TEST(NetTransportTest, InProcessRecvTimesOut) {
  auto [a, b] = InProcessTransport::CreatePair();
  (void)a;
  auto got = b->Recv(20);
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(NetTransportTest, InProcessCloseUnblocksAndFailsSends) {
  auto [a, b] = InProcessTransport::CreatePair();
  a->Close();
  EXPECT_EQ(b->Recv(1000).status().code(), StatusCode::kIoError);
  EXPECT_EQ(b->Send(EncodeBye()).code(), StatusCode::kIoError);
}

TEST(NetTransportTest, InProcessQueueBackpressure) {
  auto [a, b] = InProcessTransport::CreatePair(/*max_queued=*/2);
  Bytes frame = EncodeBye();
  ASSERT_TRUE(a->Send(frame).ok());
  ASSERT_TRUE(a->Send(frame).ok());
  EXPECT_EQ(a->Send(frame).code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(b->Recv(100).ok());
  EXPECT_TRUE(a->Send(frame).ok());
}

TEST(NetTransportTest, UnixPairReassemblesFrames) {
  auto pair = SocketTransport::CreateUnixPair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  auto& [a, b] = *pair;
  // A large frame (crosses many 4 KiB reads) followed by a small one.
  TupleBatchMsg big;
  big.round_id = 1;
  big.batch.reserve(100);
  for (int i = 0; i < 100; ++i) {
    big.batch.push_back(Bytes(1000, static_cast<uint8_t>(i)));
  }
  Bytes big_frame = EncodeTupleBatch(big);
  ASSERT_GT(big_frame.size(), 64u * 1024);
  Bytes small_frame = EncodeBye();
  ASSERT_TRUE(a->Send(big_frame).ok());
  ASSERT_TRUE(a->Send(small_frame).ok());

  auto got_big = b->Recv(2000);
  ASSERT_TRUE(got_big.ok()) << got_big.status().ToString();
  EXPECT_EQ(ByteView(*got_big), ByteView(big_frame));
  auto got_small = b->Recv(2000);
  ASSERT_TRUE(got_small.ok());
  EXPECT_EQ(ByteView(*got_small), ByteView(small_frame));
  EXPECT_EQ(b->bytes_received(), big_frame.size() + small_frame.size());
}

TEST(NetTransportTest, SocketRejectsGarbageHeader) {
  auto pair = SocketTransport::CreateUnixPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = *pair;
  Bytes garbage(16, 0x5A);
  ASSERT_TRUE(a->Send(garbage).ok());
  EXPECT_EQ(b->Recv(1000).status().code(), StatusCode::kCorruption);
}

TEST(NetTransportTest, TcpLoopbackConnectAndExchange) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  ASSERT_NE(listener.port(), 0);

  auto client = SocketTransport::ConnectTcp("127.0.0.1", listener.port(), 2000);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server = listener.Accept(2000);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Bytes frame = EncodeHelloAck(HelloAckMsg{true});
  ASSERT_TRUE((*client)->Send(frame).ok());
  auto got = (*server)->Recv(2000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ByteView(*got), ByteView(frame));
}

// ---------------------------------------------------------------------------
// Protocol over the wire

/// Deterministic token fleet + tuples, seeded exactly like AggProtocolTest
/// so in-process and wire runs can be compared byte for byte.
struct TestFleet {
  std::vector<std::unique_ptr<mcu::SecureToken>> tokens;
  std::vector<Participant> participants;
  std::unique_ptr<mcu::SecureToken> verifier;
};

TestFleet MakeTestFleet(size_t n, const char* key = "fleet-test") {
  TestFleet f;
  crypto::SymmetricKey fleet_key = crypto::KeyFromString(key);
  for (uint64_t i = 0; i < n; ++i) {
    mcu::SecureToken::Config cfg;
    cfg.token_id = i;
    cfg.fleet_key = fleet_key;
    cfg.rng_seed = 100 + i;
    f.tokens.push_back(std::make_unique<mcu::SecureToken>(cfg));
  }
  Rng rng(55);
  for (uint64_t i = 0; i < n; ++i) {
    Participant p;
    p.token = f.tokens[i].get();
    int tuples = 5 + static_cast<int>(rng.Uniform(10));
    for (int t = 0; t < tuples; ++t) {
      SourceTuple st;
      st.group = "city-" + std::to_string(rng.Uniform(5));
      st.value = static_cast<double>(rng.Uniform(100));
      p.tuples.push_back(std::move(st));
    }
    f.participants.push_back(std::move(p));
  }
  mcu::SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = fleet_key;
  f.verifier = std::make_unique<mcu::SecureToken>(vcfg);
  return f;
}

/// Connects `fleet` to a server over in-process transports; returns the
/// running clients (caller joins them after Shutdown). Token 0's faults are
/// seed-driven: on failure, print `clients[0]->injection_log().ToString()`
/// and rerun with the same seed to reproduce the exact fault sequence.
std::vector<std::unique_ptr<TokenClient>> ConnectClients(
    SsiServer* server, TestFleet* fleet, FaultPlan faults_for_token0 = {}) {
  std::vector<std::unique_ptr<TokenClient>> clients;
  clients.reserve(fleet->participants.size());
  for (size_t i = 0; i < fleet->participants.size(); ++i) {
    auto [server_end, client_end] = InProcessTransport::CreatePair();
    TokenClient::Config cfg;
    cfg.token = fleet->tokens[i].get();
    cfg.tuples = fleet->participants[i].tuples;
    if (i == 0) {
      cfg.faults = faults_for_token0;
    }
    auto client =
        std::make_unique<TokenClient>(std::move(client_end), std::move(cfg));
    client->Start();
    auto idx = server->AcceptSession(std::move(server_end));
    EXPECT_TRUE(idx.ok()) << idx.status().ToString();
    clients.push_back(std::move(client));
  }
  return clients;
}

void JoinAll(SsiServer* server,
             std::vector<std::unique_ptr<TokenClient>>* clients) {
  server->Shutdown();
  for (auto& c : *clients) {
    c->Stop();
    EXPECT_TRUE(c->Join().ok());
  }
}

TEST(NetSecureAggTest, LoopbackMatchesInProcessByteIdentical) {
  // Two identically-seeded fleets: one runs the in-process protocol, the
  // other the wire protocol. Same item order, same partitions, same token
  // RNG streams => exactly equal results, leakage and token work.
  TestFleet inproc = MakeTestFleet(6);
  global::SecureAggProtocol::Config pcfg;
  pcfg.partition_capacity = 16;
  global::SecureAggProtocol protocol(pcfg);
  auto expected = protocol.Execute(inproc.participants, AggFunc::kSum);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  TestFleet wired = MakeTestFleet(6);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;
  scfg.verifier = wired.verifier.get();
  SsiServer server(scfg);
  auto clients = ConnectClients(&server, &wired);
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  // Bit-exact group results (doubles compared with ==).
  ASSERT_EQ(output->groups.size(), expected->groups.size());
  for (const auto& [group, value] : expected->groups) {
    ASSERT_TRUE(output->groups.count(group)) << group;
    EXPECT_EQ(output->groups[group], value) << group;
  }
  // Same SSI view and same token work as in-process.
  EXPECT_EQ(output->leakage.tuples_observed,
            expected->leakage.tuples_observed);
  EXPECT_EQ(output->leakage.distinct_classes,
            expected->leakage.distinct_classes);
  EXPECT_EQ(output->metrics.token_crypto_ops,
            expected->metrics.token_crypto_ops);
  EXPECT_EQ(output->metrics.rounds, expected->metrics.rounds);
  EXPECT_EQ(output->metrics.tokens_missing, 0u);
  EXPECT_EQ(server.last_report().responders, 6u);
}

TEST(NetSecureAggTest, FramedBytesExceedSyntheticAccounting) {
  TestFleet inproc = MakeTestFleet(6);
  global::SecureAggProtocol::Config pcfg;
  pcfg.partition_capacity = 16;
  global::SecureAggProtocol protocol(pcfg);
  auto synthetic = protocol.Execute(inproc.participants, AggFunc::kSum);
  ASSERT_TRUE(synthetic.ok());

  TestFleet wired = MakeTestFleet(6);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;
  scfg.verifier = wired.verifier.get();
  SsiServer server(scfg);
  auto clients = ConnectClients(&server, &wired);
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok());

  // The wire pays for frame headers, length prefixes and round metadata on
  // top of the ciphertexts the in-process model counts.
  EXPECT_GT(output->metrics.bytes, synthetic->metrics.bytes);
  EXPECT_GT(output->metrics.bytes_token_to_ssi,
            synthetic->metrics.bytes_token_to_ssi);
  EXPECT_GT(output->metrics.bytes_ssi_to_token,
            synthetic->metrics.bytes_ssi_to_token);
  // Directional sum invariant over measured frames.
  EXPECT_EQ(output->metrics.bytes, output->metrics.bytes_token_to_ssi +
                                       output->metrics.bytes_ssi_to_token);
}

TEST(NetSecureAggTest, SocketLoopbackMatchesInProcess) {
  TestFleet inproc = MakeTestFleet(4);
  global::SecureAggProtocol::Config pcfg;
  pcfg.partition_capacity = 16;
  global::SecureAggProtocol protocol(pcfg);
  auto expected = protocol.Execute(inproc.participants, AggFunc::kSum);
  ASSERT_TRUE(expected.ok());

  TestFleet wired = MakeTestFleet(4);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;
  scfg.verifier = wired.verifier.get();
  SsiServer server(scfg);
  std::vector<std::unique_ptr<TokenClient>> clients;
  for (size_t i = 0; i < wired.participants.size(); ++i) {
    auto pair = SocketTransport::CreateUnixPair();
    ASSERT_TRUE(pair.ok());
    TokenClient::Config ccfg;
    ccfg.token = wired.tokens[i].get();
    ccfg.tuples = wired.participants[i].tuples;
    auto client = std::make_unique<TokenClient>(std::move(pair->second),
                                                std::move(ccfg));
    client->Start();
    auto idx = server.AcceptSession(std::move(pair->first));
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    clients.push_back(std::move(client));
  }
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_EQ(output->groups.size(), expected->groups.size());
  for (const auto& [group, value] : expected->groups) {
    EXPECT_EQ(output->groups[group], value) << group;
  }
}

// ---------------------------------------------------------------------------
// Slot-packed Paillier round over the wire

/// The querier-side packed context, built exactly as the in-process
/// PackedPaillierProtocol builds it so both runs share keypair and layout.
struct PackedContext {
  std::vector<std::string> domain;
  std::unique_ptr<crypto::PackedAggregate> agg;
};

PackedContext MakePackedContext(size_t fleet_size) {
  PackedContext ctx;
  for (int i = 0; i < 5; ++i) {
    ctx.domain.push_back("city-" + std::to_string(i));
  }
  Rng key_rng(42);
  auto paillier = crypto::Paillier::Generate(256, &key_rng);
  EXPECT_TRUE(paillier.ok());
  auto agg = crypto::PackedAggregate::Create(*paillier, fleet_size,
                                             /*max_value=*/4096,
                                             2 * ctx.domain.size());
  EXPECT_TRUE(agg.ok());
  ctx.agg = std::make_unique<crypto::PackedAggregate>(std::move(agg).value());
  return ctx;
}

TEST(NetPackedAggTest, PackedLoopbackMatchesInProcessByteIdentical) {
  // In-process packed protocol vs the same fleet over the wire: identical
  // keypair, layout and token RNG streams => identical groups, leakage and
  // token work.
  TestFleet inproc = MakeTestFleet(6);
  global::PackedPaillierProtocol::Config pcfg;
  for (int i = 0; i < 5; ++i) {
    pcfg.domain.push_back("city-" + std::to_string(i));
  }
  pcfg.max_slot_value = 4096;
  pcfg.paillier_bits = 256;
  pcfg.key_seed = 42;
  global::PackedPaillierProtocol protocol(pcfg);
  auto expected = protocol.Execute(inproc.participants, AggFunc::kSum);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  TestFleet wired = MakeTestFleet(6);
  PackedContext ctx = MakePackedContext(6);
  SsiServer::Config scfg;
  scfg.verifier = wired.verifier.get();
  SsiServer server(scfg);
  std::vector<std::unique_ptr<TokenClient>> clients;
  for (size_t i = 0; i < wired.participants.size(); ++i) {
    auto [server_end, client_end] = InProcessTransport::CreatePair();
    TokenClient::Config ccfg;
    ccfg.token = wired.tokens[i].get();
    ccfg.tuples = wired.participants[i].tuples;
    ccfg.packed = ctx.agg.get();
    auto client =
        std::make_unique<TokenClient>(std::move(client_end), std::move(ccfg));
    client->Start();
    auto idx = server.AcceptSession(std::move(server_end));
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    clients.push_back(std::move(client));
  }
  auto output = server.RunPackedAggregation(AggFunc::kSum, *ctx.agg,
                                            ctx.domain);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  ASSERT_EQ(output->groups.size(), expected->groups.size());
  for (const auto& [group, value] : expected->groups) {
    ASSERT_TRUE(output->groups.count(group)) << group;
    EXPECT_EQ(output->groups[group], value) << group;
  }
  EXPECT_EQ(output->metrics.rounds, 1u);
  EXPECT_EQ(output->metrics.token_crypto_ops,
            expected->metrics.token_crypto_ops);
  EXPECT_EQ(output->leakage.tuples_observed,
            expected->leakage.tuples_observed);
  EXPECT_EQ(output->leakage.distinct_classes,
            expected->leakage.distinct_classes);
  EXPECT_EQ(output->metrics.tokens_missing, 0u);
  // Directional sum invariant over measured frames.
  EXPECT_EQ(output->metrics.bytes, output->metrics.bytes_token_to_ssi +
                                       output->metrics.bytes_ssi_to_token);
}

TEST(NetPackedAggTest, PackedRoundToleratesStragglersUnderQuorum) {
  // Packed ciphertexts are independent, so a missing token only shrinks
  // the aggregate: the run proceeds at quorum with the responders' totals.
  TestFleet wired = MakeTestFleet(4);
  PackedContext ctx = MakePackedContext(4);
  std::vector<Participant> responders(wired.participants.begin() + 1,
                                      wired.participants.end());
  auto expected = global::PlainAggregate(responders, AggFunc::kSum);

  SsiServer::Config scfg;
  scfg.verifier = wired.verifier.get();
  scfg.deadline_ms = ScaledMs(100);
  scfg.max_retries = 0;
  scfg.quorum = 0.5;
  SsiServer server(scfg);
  std::vector<std::unique_ptr<TokenClient>> clients;
  for (size_t i = 0; i < wired.participants.size(); ++i) {
    auto [server_end, client_end] = InProcessTransport::CreatePair();
    TokenClient::Config ccfg;
    ccfg.token = wired.tokens[i].get();
    ccfg.tuples = wired.participants[i].tuples;
    ccfg.packed = ctx.agg.get();
    if (i == 0) {
      ccfg.faults.swallow_first = 10;  // token 0 never answers
    }
    auto client =
        std::make_unique<TokenClient>(std::move(client_end), std::move(ccfg));
    client->Start();
    auto idx = server.AcceptSession(std::move(server_end));
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    clients.push_back(std::move(client));
  }
  auto output = server.RunPackedAggregation(AggFunc::kSum, *ctx.agg,
                                            ctx.domain);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(output->metrics.tokens_missing, 1u);
  EXPECT_EQ(server.last_report().responders, 3u);
  ASSERT_EQ(output->groups.size(), expected.size());
  for (const auto& [group, value] : expected) {
    EXPECT_EQ(output->groups[group], value) << group;
  }
}

TEST(NetSecureAggTest, PdsNodesExportAndAggregateOverWire) {
  // Full stack: PdsNode-backed clients run the policy-checked export at
  // Connect() and only then answer wire rounds.
  using embdb::ColumnType;
  using embdb::Schema;
  using embdb::Tuple;
  using embdb::Value;
  crypto::SymmetricKey fleet_key = crypto::KeyFromString("fleet-test");
  const char* cities[] = {"lyon", "paris", "nice"};
  Rng rng(17);
  std::vector<std::unique_ptr<node::PdsNode>> nodes;
  std::map<std::string, double> plain;
  for (uint64_t i = 0; i < 4; ++i) {
    node::PdsNode::Config cfg;
    cfg.node_id = 1 + i;
    cfg.fleet_key = fleet_key;
    cfg.flash_geometry.page_size = 512;
    cfg.flash_geometry.pages_per_block = 8;
    cfg.flash_geometry.block_count = 256;
    cfg.rng_seed = 1 + i;
    auto pds_node = std::make_unique<node::PdsNode>(cfg);
    Schema bills("bills", {{"id", ColumnType::kUint64, ""},
                           {"city", ColumnType::kString, ""},
                           {"amount", ColumnType::kDouble, ""}});
    ASSERT_TRUE(pds_node->DefineTable(bills).ok());
    pds_node->policies().AddRule(
        {"owner", ac::Action::kInsert, "bills", {}, std::nullopt});
    pds_node->policies().AddRule({"stats-agency", ac::Action::kShare, "bills",
                                  {"city", "amount"}, std::nullopt});
    ac::Subject owner{"owner", "user-" + std::to_string(i)};
    int rows = 2 + static_cast<int>(rng.Uniform(3));
    for (int r = 0; r < rows; ++r) {
      const char* city = cities[rng.Uniform(3)];
      double amount = static_cast<double>(rng.Uniform(500));
      Tuple t = {Value::U64(static_cast<uint64_t>(r)), Value::Str(city),
                 Value::F64(amount)};
      ASSERT_TRUE(pds_node->InsertAs(owner, "bills", t).ok());
      plain[city] += amount;
    }
    nodes.push_back(std::move(pds_node));
  }

  mcu::SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = fleet_key;
  mcu::SecureToken verifier(vcfg);
  SsiServer::Config scfg;
  scfg.partition_capacity = 8;
  scfg.verifier = &verifier;
  SsiServer server(scfg);

  std::vector<std::unique_ptr<TokenClient>> clients;
  for (auto& pds_node : nodes) {
    auto [server_end, client_end] = InProcessTransport::CreatePair();
    TokenClient::Config ccfg;
    ccfg.pds_node = pds_node.get();
    ccfg.subject = {"stats-agency", "insee"};
    ccfg.table = "bills";
    ccfg.group_column = "city";
    ccfg.value_column = "amount";
    auto client =
        std::make_unique<TokenClient>(std::move(client_end), std::move(ccfg));
    client->Start();
    auto idx = server.AcceptSession(std::move(server_end));
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    clients.push_back(std::move(client));
  }
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_EQ(output->groups.size(), plain.size());
  for (const auto& [city, sum] : plain) {
    EXPECT_NEAR(output->groups[city], sum, 1e-9) << city;
  }
  EXPECT_FALSE(output->leakage.plaintext_groups_visible);
}

TEST(NetSecureAggTest, ConcurrentSessionsOverExecutor) {
  // Wire work fanned over a FleetExecutor while every client runs its own
  // thread: the TSan CI job races this test.
  TestFleet serial_fleet = MakeTestFleet(6);
  SsiServer::Config ref_cfg;
  ref_cfg.partition_capacity = 16;
  ref_cfg.verifier = serial_fleet.verifier.get();
  SsiServer ref_server(ref_cfg);
  auto ref_clients = ConnectClients(&ref_server, &serial_fleet);
  auto ref = ref_server.RunSecureAggregation(AggFunc::kAvg);
  JoinAll(&ref_server, &ref_clients);
  ASSERT_TRUE(ref.ok());

  TestFleet fleet = MakeTestFleet(6);
  global::FleetExecutor exec(4);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;
  scfg.verifier = fleet.verifier.get();
  scfg.executor = &exec;
  SsiServer server(scfg);
  auto clients = ConnectClients(&server, &fleet);
  auto output = server.RunSecureAggregation(AggFunc::kAvg);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  // Executor fan-out must not change results or accounting.
  ASSERT_EQ(output->groups.size(), ref->groups.size());
  for (const auto& [group, value] : ref->groups) {
    EXPECT_EQ(output->groups[group], value) << group;
  }
  EXPECT_EQ(output->metrics.bytes, ref->metrics.bytes);
  EXPECT_EQ(output->metrics.token_crypto_ops,
            ref->metrics.token_crypto_ops);
}

// ---------------------------------------------------------------------------
// Quorum, timeout, retry

TEST(NetQuorumTest, DroppedTokenCompletesAtQuorum) {
  TestFleet fleet = MakeTestFleet(5);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;
  scfg.verifier = fleet.verifier.get();
  scfg.deadline_ms = ScaledMs(150);
  scfg.max_retries = 1;
  scfg.backoff_ms = ScaledMs(5);
  scfg.quorum = 0.8;  // 4 of 5 suffice
  SsiServer server(scfg);
  // Token 0 swallows every request it will ever see.
  FaultPlan plan;
  plan.seed = 11;
  plan.swallow_first = 100;
  auto clients = ConnectClients(&server, &fleet, plan);
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok()) << output.status().ToString() << "\nfaults (seed "
                           << plan.seed << "):\n"
                           << clients[0]->injection_log().ToString();

  // The result covers exactly the four responders.
  std::vector<Participant> responders(fleet.participants.begin() + 1,
                                      fleet.participants.end());
  auto expected = global::PlainAggregate(responders, AggFunc::kSum);
  ASSERT_EQ(output->groups.size(), expected.size());
  for (const auto& [group, value] : expected) {
    EXPECT_NEAR(output->groups[group], value, 1e-9) << group;
  }
  // The shortfall is visible in Metrics and the round report.
  EXPECT_EQ(output->metrics.tokens_missing, 1u);
  EXPECT_EQ(server.last_report().responders, 4u);
  EXPECT_EQ(server.last_report().missing_tokens, 1u);
  EXPECT_GT(server.last_report().deadline_hits, 0u);
  EXPECT_GT(server.last_report().retries, 0u);
}

TEST(NetQuorumTest, FullQuorumFailsWhenTokenDrops) {
  TestFleet fleet = MakeTestFleet(4);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;
  scfg.verifier = fleet.verifier.get();
  scfg.deadline_ms = ScaledMs(150);
  scfg.max_retries = 0;
  scfg.quorum = 1.0;
  SsiServer server(scfg);
  FaultPlan plan;
  plan.seed = 12;
  plan.swallow_first = 100;
  auto clients = ConnectClients(&server, &fleet, plan);
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  JoinAll(&server, &clients);
  EXPECT_EQ(output.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(output.status().message().find("quorum"), std::string::npos);
}

TEST(NetQuorumTest, RetryRecoversFlakyToken) {
  TestFleet fleet = MakeTestFleet(4);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;
  scfg.verifier = fleet.verifier.get();
  scfg.deadline_ms = ScaledMs(150);
  scfg.max_retries = 2;
  scfg.backoff_ms = ScaledMs(5);
  scfg.quorum = 1.0;
  SsiServer server(scfg);
  // Token 0 drops exactly one request; the retry of the same round lands.
  FaultPlan plan;
  plan.seed = 13;
  plan.swallow_first = 1;
  auto clients = ConnectClients(&server, &fleet, plan);
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok()) << output.status().ToString() << "\nfaults (seed "
                           << plan.seed << "):\n"
                           << clients[0]->injection_log().ToString();
  EXPECT_EQ(clients[0]->injection_log().Count(FaultKind::kSwallowRequest), 1u);

  auto expected = global::PlainAggregate(fleet.participants, AggFunc::kSum);
  for (const auto& [group, value] : expected) {
    EXPECT_NEAR(output->groups[group], value, 1e-9) << group;
  }
  EXPECT_EQ(output->metrics.tokens_missing, 0u);
  EXPECT_EQ(server.last_report().responders, 4u);
  EXPECT_GE(server.last_report().retries, 1u);
  EXPECT_GE(server.last_report().deadline_hits, 1u);
}

// ---------------------------------------------------------------------------
// Handshake

TEST(NetHandshakeTest, AcceptsFleetMember) {
  TestFleet fleet = MakeTestFleet(1);
  SsiServer::Config scfg;
  scfg.verifier = fleet.verifier.get();
  SsiServer server(scfg);
  auto clients = ConnectClients(&server, &fleet);
  EXPECT_EQ(server.num_sessions(), 1u);
  JoinAll(&server, &clients);
}

TEST(NetHandshakeTest, RejectsTokenOutsideFleet) {
  // Client token provisioned with a different application-domain key: its
  // attestation proof fails and the session is refused on both sides.
  TestFleet fleet = MakeTestFleet(1);
  mcu::SecureToken::Config foreign_cfg;
  foreign_cfg.token_id = 666;
  foreign_cfg.fleet_key = crypto::KeyFromString("some-other-fleet");
  mcu::SecureToken foreign(foreign_cfg);

  auto [server_end, client_end] = InProcessTransport::CreatePair();
  TokenClient::Config ccfg;
  ccfg.token = &foreign;
  TokenClient client(std::move(client_end), std::move(ccfg));
  client.Start();

  SsiServer::Config scfg;
  scfg.verifier = fleet.verifier.get();
  SsiServer server(scfg);
  auto idx = server.AcceptSession(std::move(server_end));
  EXPECT_EQ(idx.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(server.num_sessions(), 0u);
  client.Stop();
  EXPECT_EQ(client.Join().code(), StatusCode::kPermissionDenied);
}

// ---------------------------------------------------------------------------
// Distributed tracing and the live stats surface

#if PDS_OBS_ENABLED
TEST(NetTracingTest, TokenRoundSpansParentUnderSsiRoundTrips) {
  // The acceptance walk for the merged cross-process trace: after a
  // loopback run with tracing on, every token-side round handler span must
  // be a child of one of the SSI's round-trip spans — one timeline per
  // round, stitched across the process boundary by the wire trace context.
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetEnabled(false);
  tracer.SetSampleEveryN(1);
  tracer.SetCapacity(1 << 14);
  tracer.SetEnabled(true);

  TestFleet fleet = MakeTestFleet(6);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;  // forces aggregate + finalize rounds
  scfg.verifier = fleet.verifier.get();
  SsiServer server(scfg);
  auto clients = ConnectClients(&server, &fleet);
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  JoinAll(&server, &clients);
  tracer.SetEnabled(false);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_EQ(tracer.dropped(), 0u);

  std::set<uint64_t> round_trip_ids;
  for (const obs::SpanEvent& e : tracer.Events()) {
    if (std::string_view(e.name) == "net.round-trip") {
      round_trip_ids.insert(e.id);
    }
  }
  EXPECT_FALSE(round_trip_ids.empty());
  size_t token_spans = 0;
  std::set<std::string> token_span_names;
  for (const obs::SpanEvent& e : tracer.Events()) {
    std::string_view name(e.name);
    if (name == "net.round.collect" || name == "net.round.aggregate" ||
        name == "net.round.finalize") {
      ++token_spans;
      token_span_names.insert(std::string(name));
      EXPECT_NE(e.parent, 0u) << name;
      EXPECT_TRUE(round_trip_ids.count(e.parent))
          << name << " parent " << e.parent
          << " is not an SSI round-trip span";
    }
  }
  // Every phase of the protocol crossed the boundary: one collect per
  // token, aggregate rounds (partition_capacity forces them at this fleet
  // size), and the finalize.
  EXPECT_GE(token_spans, fleet.tokens.size());
  EXPECT_TRUE(token_span_names.count("net.round.collect"));
  EXPECT_TRUE(token_span_names.count("net.round.aggregate"));
  EXPECT_TRUE(token_span_names.count("net.round.finalize"));

  // And the merged view survives export: both sides' spans land in the one
  // Chrome trace document.
  std::ostringstream trace_out;
  tracer.ExportChromeTrace(trace_out);
  std::string trace = trace_out.str();
  EXPECT_NE(trace.find("net.round-trip"), std::string::npos);
  EXPECT_NE(trace.find("net.round.collect"), std::string::npos);
}
#endif  // PDS_OBS_ENABLED

TEST(NetStatsTest, TelemetryCountsRoundTripsPerSession) {
  TestFleet fleet = MakeTestFleet(4);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;
  scfg.verifier = fleet.verifier.get();
  SsiServer server(scfg);
  auto clients = ConnectClients(&server, &fleet);
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  JoinAll(&server, &clients);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  std::vector<SsiServer::SessionTelemetry> telemetry = server.Telemetry();
  ASSERT_EQ(telemetry.size(), 4u);
  for (const auto& t : telemetry) {
    EXPECT_GT(t.round_trips, 0u) << "token " << t.token_id;
    EXPECT_GT(t.rtt_p50_us, 0.0) << "token " << t.token_id;
    EXPECT_LE(t.rtt_p50_us, t.rtt_p99_us) << "token " << t.token_id;
    EXPECT_LE(t.rtt_p99_us, t.rtt_p999_us) << "token " << t.token_id;
    EXPECT_DOUBLE_EQ(t.buffer_bytes, 0.0);  // nothing in flight at rest
    EXPECT_GT(t.buffer_high_water, 0.0);
  }
  EXPECT_GT(server.rtt_histogram().count(), 0u);
}

TEST(NetStatsTest, StatsRequestReturnsLiveJsonSnapshot) {
  TestFleet fleet = MakeTestFleet(3);
  SsiServer::Config scfg;
  scfg.partition_capacity = 16;
  scfg.verifier = fleet.verifier.get();
  SsiServer server(scfg);
  auto clients = ConnectClients(&server, &fleet);
  auto output = server.RunSecureAggregation(AggFunc::kSum);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  // The stats channel is its own connection — no handshake, one
  // request/reply exchange.
  auto [admin_end, stats_end] = InProcessTransport::CreatePair();
  std::thread serving([&server, transport = stats_end.get()] {
    EXPECT_TRUE(server.ServeStats(transport).ok());
  });
  ASSERT_TRUE(admin_end->Send(EncodeStatsRequest()).ok());
  auto reply_frame = admin_end->Recv(2000);
  ASSERT_TRUE(reply_frame.ok()) << reply_frame.status().ToString();
  auto reply = DecodeAs<StatsReplyMsg>(*reply_frame);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  serving.join();

  // The snapshot carries all four surfaces: per-session telemetry, fleet
  // percentiles, the metrics registry, and the delta-snapshot ring.
  EXPECT_NE(reply->json.find("\"sessions\""), std::string::npos);
  EXPECT_NE(reply->json.find("\"fleet\""), std::string::npos);
  EXPECT_NE(reply->json.find("\"registry\""), std::string::npos);
  EXPECT_NE(reply->json.find("\"ring\""), std::string::npos);
  EXPECT_NE(reply->json.find("\"rtt_p50_us\""), std::string::npos);
  EXPECT_NE(reply->json.find("\"net.round_trip_us\""), std::string::npos);

  JoinAll(&server, &clients);
}

TEST(NetStatsTest, StatsChannelRejectsNonStatsFrames) {
  TestFleet fleet = MakeTestFleet(1);
  SsiServer::Config scfg;
  scfg.verifier = fleet.verifier.get();
  SsiServer server(scfg);

  auto [admin_end, stats_end] = InProcessTransport::CreatePair();
  ASSERT_TRUE(admin_end->Send(EncodeBye()).ok());
  EXPECT_EQ(server.ServeStats(stats_end.get()).code(),
            StatusCode::kFailedPrecondition);
  // The peer gets a protocol error frame rather than silence.
  auto reply = admin_end->Recv(2000);
  ASSERT_TRUE(reply.ok());
  auto decoded = DecodeMessage(*reply);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::holds_alternative<ErrorMsg>(decoded->body));
}

}  // namespace
}  // namespace pds::net
