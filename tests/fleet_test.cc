// pds::node::Fleet: provisioning a token fleet, the policy-checked export
// fan-out (serial and across a FleetExecutor), and feeding the exported
// participants straight into a [TNP14] protocol.

#include <gtest/gtest.h>

#include "global/agg_protocols.h"
#include "pds/fleet.h"

namespace pds::node {
namespace {

using ac::Action;
using ac::Subject;
using embdb::ColumnType;
using embdb::Schema;
using embdb::Tuple;
using embdb::Value;

class FleetTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 10;

  void SetUp() override { fleet_ = MakeFleet(); }

  std::unique_ptr<Fleet> MakeFleet() {
    Fleet::Config cfg;
    cfg.num_nodes = kNodes;
    cfg.fleet_key = crypto::KeyFromString("fleet-test");
    cfg.flash_geometry.page_size = 512;
    cfg.flash_geometry.pages_per_block = 8;
    cfg.flash_geometry.block_count = 256;
    auto fleet = std::make_unique<Fleet>(cfg);

    Rng rng(17);
    const char* cities[] = {"lyon", "paris", "nice"};
    for (size_t i = 0; i < fleet->size(); ++i) {
      PdsNode& node = fleet->node(i);
      Schema bills("bills", {{"id", ColumnType::kUint64, ""},
                             {"city", ColumnType::kString, ""},
                             {"amount", ColumnType::kDouble, ""}});
      EXPECT_TRUE(node.DefineTable(bills).ok());
      node.policies().AddRule(
          {"owner", Action::kInsert, "bills", {}, std::nullopt});
      node.policies().AddRule({"stats-agency", Action::kShare, "bills",
                               {"city", "amount"}, std::nullopt});
      Subject owner{"owner", "user-" + std::to_string(i)};
      int rows = 2 + static_cast<int>(rng.Uniform(3));
      for (int r = 0; r < rows; ++r) {
        Tuple t = {Value::U64(static_cast<uint64_t>(r)),
                   Value::Str(cities[rng.Uniform(3)]),
                   Value::F64(static_cast<double>(rng.Uniform(500)))};
        EXPECT_TRUE(node.InsertAs(owner, "bills", t).ok());
      }
    }
    return fleet;
  }

  std::unique_ptr<Fleet> fleet_;
};

TEST_F(FleetTest, ProvisionsSequentialNodeIds) {
  ASSERT_EQ(fleet_->size(), kNodes);
  for (size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(fleet_->node(i).id(), 1 + i);
  }
}

TEST_F(FleetTest, ExportsParticipantsInNodeOrder) {
  auto participants = fleet_->ExportParticipants({"stats-agency", "insee"},
                                                 "bills", "city", "amount");
  ASSERT_TRUE(participants.ok()) << participants.status().ToString();
  ASSERT_EQ(participants->size(), kNodes);
  for (size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ((*participants)[i].token, &fleet_->node(i).token());
    EXPECT_FALSE((*participants)[i].tuples.empty());
  }
}

TEST_F(FleetTest, ExportDeniesUnauthorizedSubject) {
  auto denied = fleet_->ExportParticipants({"advertiser", "acme"}, "bills",
                                           "city", "amount");
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FleetTest, ExportReportsEveryFailingNode) {
  // Revoke the Share rule on a scattered subset: the error must name every
  // failing node index, not just the lowest one.
  const size_t revoked[] = {2, 5, 7};
  for (size_t i : revoked) {
    fleet_->node(i).policies() = ac::PolicySet();
    fleet_->node(i).policies().AddRule(
        {"owner", Action::kInsert, "bills", {}, std::nullopt});
  }
  auto denied = fleet_->ExportParticipants({"stats-agency", "insee"}, "bills",
                                           "city", "amount");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  const std::string& msg = denied.status().message();
  EXPECT_NE(msg.find("3/10 nodes failed export"), std::string::npos) << msg;
  for (size_t i : revoked) {
    EXPECT_NE(msg.find("node " + std::to_string(i)), std::string::npos)
        << msg;
  }
  EXPECT_EQ(msg.find("node 0"), std::string::npos) << msg;
  // Same aggregation across a parallel export.
  global::FleetExecutor exec(4);
  auto denied_par = fleet_->ExportParticipants({"stats-agency", "insee"},
                                               "bills", "city", "amount",
                                               &exec);
  ASSERT_FALSE(denied_par.ok());
  EXPECT_NE(denied_par.status().message().find("3/10 nodes failed export"),
            std::string::npos);
}

TEST_F(FleetTest, ParallelExportMatchesSerial) {
  auto serial = fleet_->ExportParticipants({"stats-agency", "insee"},
                                           "bills", "city", "amount");
  ASSERT_TRUE(serial.ok());

  auto fresh = MakeFleet();
  global::FleetExecutor exec(8);
  auto parallel = fresh->ExportParticipants({"stats-agency", "insee"},
                                            "bills", "city", "amount", &exec);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    const auto& a = (*serial)[i].tuples;
    const auto& b = (*parallel)[i].tuples;
    ASSERT_EQ(a.size(), b.size()) << "node " << i;
    for (size_t t = 0; t < a.size(); ++t) {
      EXPECT_EQ(a[t].group, b[t].group);
      EXPECT_EQ(a[t].value, b[t].value);
    }
  }
}

TEST_F(FleetTest, ExportFeedsSecureAggregation) {
  auto participants = fleet_->ExportParticipants({"stats-agency", "insee"},
                                                 "bills", "city", "amount");
  ASSERT_TRUE(participants.ok());
  auto expected = global::PlainAggregate(*participants, global::AggFunc::kSum);

  global::FleetExecutor exec(4);
  global::SecureAggProtocol::Config cfg;
  cfg.partition_capacity = 64;
  cfg.executor = &exec;
  global::SecureAggProtocol protocol(cfg);
  auto output = protocol.Execute(*participants, global::AggFunc::kSum);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_EQ(output->groups.size(), expected.size());
  for (auto& [city, sum] : expected) {
    EXPECT_NEAR(output->groups[city], sum, 1e-9) << city;
  }
  EXPECT_FALSE(output->leakage.plaintext_groups_visible);
}

}  // namespace
}  // namespace pds::node
