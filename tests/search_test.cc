#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"
#include "search/search_engine.h"
#include "search/tokenizer.h"

namespace pds::search {
namespace {

TEST(TokenizerTest, BasicSplit) {
  auto tokens = Tokenize("Hello, World! foo-bar42");
  std::vector<std::string> expected = {"hello", "world", "foo", "bar42"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!! ---").empty());
}

TEST(TokenizerTest, TermFrequencies) {
  auto tf = TermFrequencies("the cat and the hat and the cat");
  EXPECT_EQ(tf["the"], 3u);
  EXPECT_EQ(tf["cat"], 2u);
  EXPECT_EQ(tf["and"], 2u);
  EXPECT_EQ(tf["hat"], 1u);
}

flash::Geometry EngineGeometry() {
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 256;
  return g;
}

class SearchEngineTest : public ::testing::Test {
 protected:
  SearchEngineTest()
      : chip_(EngineGeometry()),
        alloc_(&chip_),
        gauge_(64 * 1024) {}

  std::unique_ptr<EmbeddedSearchEngine> NewEngine(
      uint32_t blocks = 64, size_t buffer_bytes = 1024) {
    auto part = alloc_.Allocate(blocks);
    EXPECT_TRUE(part.ok());
    EmbeddedSearchEngine::Options opts;
    opts.index.num_buckets = 16;
    opts.index.insert_buffer_bytes = buffer_bytes;
    auto engine =
        std::make_unique<EmbeddedSearchEngine>(*part, &gauge_, opts);
    EXPECT_TRUE(engine->Init().ok());
    return engine;
  }

  flash::FlashChip chip_;
  flash::PartitionAllocator alloc_;
  mcu::RamGauge gauge_;
};

TEST_F(SearchEngineTest, SingleTermQuery) {
  auto engine = NewEngine();
  ASSERT_TRUE(engine->AddDocument("apples and oranges").ok());
  ASSERT_TRUE(engine->AddDocument("oranges and bananas").ok());
  ASSERT_TRUE(engine->AddDocument("bananas and cherries").ok());
  ASSERT_TRUE(engine->Flush().ok());

  auto results = engine->Search({"apples"}, 10);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].docid, 1u);
}

TEST_F(SearchEngineTest, NoMatchesEmptyResult) {
  auto engine = NewEngine();
  ASSERT_TRUE(engine->AddDocument("apples").ok());
  auto results = engine->Search({"zebra"}, 10);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST_F(SearchEngineTest, EmptyQueryAndEmptyIndex) {
  auto engine = NewEngine();
  auto r1 = engine->Search({"anything"}, 10);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());
  ASSERT_TRUE(engine->AddDocument("doc").ok());
  auto r2 = engine->Search({}, 10);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST_F(SearchEngineTest, TfWeighting) {
  auto engine = NewEngine();
  // doc1 mentions "privacy" once, doc2 three times; same idf -> doc2 wins.
  ASSERT_TRUE(engine->AddDocument("privacy matters today").ok());
  ASSERT_TRUE(
      engine->AddDocument("privacy privacy privacy is the topic").ok());
  ASSERT_TRUE(engine->AddDocument("unrelated filler text").ok());
  ASSERT_TRUE(engine->Flush().ok());

  auto results = engine->Search({"privacy"}, 10);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].docid, 2u);
  EXPECT_EQ((*results)[1].docid, 1u);
  EXPECT_GT((*results)[0].score, (*results)[1].score);
}

TEST_F(SearchEngineTest, IdfWeighting) {
  auto engine = NewEngine();
  // "common" appears everywhere (idf = 0), "rare" in one doc.
  ASSERT_TRUE(engine->AddDocument("common rare").ok());
  ASSERT_TRUE(engine->AddDocument("common").ok());
  ASSERT_TRUE(engine->AddDocument("common").ok());
  ASSERT_TRUE(engine->AddDocument("common").ok());
  ASSERT_TRUE(engine->Flush().ok());

  auto results = engine->Search({"common", "rare"}, 10);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // doc1 holds the only positive-score hit ("rare"); docs with only
  // "common" score log(4/4) = 0.
  EXPECT_EQ((*results)[0].docid, 1u);
  double expected = 1.0 * std::log(4.0 / 1.0);
  EXPECT_NEAR((*results)[0].score, expected, 1e-9);
}

TEST_F(SearchEngineTest, MultiTermScoresSum) {
  auto engine = NewEngine();
  ASSERT_TRUE(engine->AddDocument("alpha beta").ok());
  ASSERT_TRUE(engine->AddDocument("alpha").ok());
  ASSERT_TRUE(engine->AddDocument("beta").ok());
  ASSERT_TRUE(engine->AddDocument("gamma").ok());
  ASSERT_TRUE(engine->Flush().ok());

  auto results = engine->Search({"alpha", "beta"}, 10);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].docid, 1u);  // matches both terms
  double idf = std::log(4.0 / 2.0);
  EXPECT_NEAR((*results)[0].score, 2 * idf, 1e-9);
  EXPECT_NEAR((*results)[1].score, idf, 1e-9);
}

TEST_F(SearchEngineTest, TopNBoundsResults) {
  auto engine = NewEngine();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine->AddDocument("needle filler" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(engine->AddDocument("haystack only").ok());
  ASSERT_TRUE(engine->Flush().ok());

  auto results = engine->Search({"needle"}, 5);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 5u);
}

TEST_F(SearchEngineTest, PipelineMatchesNaive) {
  // The pipeline evaluator and the container-per-docid strawman must agree.
  auto engine = NewEngine();
  Rng rng(77);
  std::vector<std::string> vocab = {"data",   "privacy", "server", "token",
                                    "flash",  "query",   "index",  "secure",
                                    "log",    "page"};
  for (int d = 0; d < 60; ++d) {
    std::string text;
    int len = 3 + static_cast<int>(rng.Uniform(10));
    for (int w = 0; w < len; ++w) {
      text += vocab[rng.Uniform(vocab.size())] + " ";
    }
    ASSERT_TRUE(engine->AddDocument(text).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());

  for (auto query : std::vector<std::vector<std::string>>{
           {"data"}, {"privacy", "token"}, {"secure", "flash", "query"}}) {
    auto pipeline = engine->Search(query, 10);
    auto naive = engine->SearchNaive(query, 10);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE(naive.ok());
    ASSERT_EQ(pipeline->size(), naive->size());
    for (size_t i = 0; i < pipeline->size(); ++i) {
      EXPECT_EQ((*pipeline)[i].docid, (*naive)[i].docid) << "rank " << i;
      EXPECT_NEAR((*pipeline)[i].score, (*naive)[i].score, 1e-9);
    }
  }
}

TEST_F(SearchEngineTest, QueryWorksWithUnflushedBuffer) {
  auto engine = NewEngine(/*blocks=*/64, /*buffer_bytes=*/8192);
  ASSERT_TRUE(engine->AddDocument("buffered document").ok());
  // No flush: postings still in RAM.
  auto results = engine->Search({"buffered"}, 10);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
}

TEST_F(SearchEngineTest, ResultsSpanFlushedAndBuffered) {
  auto engine = NewEngine(/*blocks=*/64, /*buffer_bytes=*/256);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->AddDocument("keyword number" + std::to_string(i)).ok());
  }
  // Small buffer flushed several times; latest postings may be in RAM.
  auto results = engine->Search({"keyword"}, 20);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 10u);
}

TEST_F(SearchEngineTest, PipelineRamIsBoundedNaiveIsNot) {
  // A tight RAM budget: pipeline succeeds, naive exhausts RAM.
  mcu::RamGauge tight(6 * 1024);
  auto part = alloc_.Allocate(64);
  ASSERT_TRUE(part.ok());
  EmbeddedSearchEngine::Options opts;
  opts.index.num_buckets = 16;
  opts.index.insert_buffer_bytes = 1024;
  opts.naive_container_bytes = 64;
  EmbeddedSearchEngine engine(*part, &tight, opts);
  ASSERT_TRUE(engine.Init().ok());

  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine.AddDocument("popular term doc").ok());
  }
  ASSERT_TRUE(engine.Flush().ok());

  auto pipeline = engine.Search({"popular"}, 10);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ(pipeline->size(), 10u);

  auto naive = engine.SearchNaive({"popular"}, 10);
  EXPECT_EQ(naive.status().code(), StatusCode::kResourceExhausted);
  // The failed query must not leak RAM.
  auto retry = engine.Search({"popular"}, 10);
  EXPECT_TRUE(retry.ok());
}

TEST_F(SearchEngineTest, DescendingDocidInvariant) {
  // Verify the cursor contract directly: postings arrive docid-descending.
  auto part = alloc_.Allocate(32);
  ASSERT_TRUE(part.ok());
  InvertedIndexLog::Options opts;
  opts.num_buckets = 4;
  opts.insert_buffer_bytes = 256;
  InvertedIndexLog index(*part, &gauge_, opts);
  ASSERT_TRUE(index.Init().ok());

  for (uint32_t d = 1; d <= 100; ++d) {
    std::map<std::string, uint32_t> tf = {{"term", d % 5 + 1}};
    ASSERT_TRUE(index.AddDocument(d, tf).ok());
  }

  auto cursor = index.OpenTerm("term");
  ASSERT_TRUE(cursor.ok());
  uint32_t prev = 0xFFFFFFFF;
  uint32_t count = 0;
  while (!cursor->AtEnd()) {
    EXPECT_LT(cursor->docid(), prev);
    prev = cursor->docid();
    ++count;
    ASSERT_TRUE(cursor->Advance().ok());
  }
  EXPECT_EQ(count, 100u);
}

TEST_F(SearchEngineTest, RejectsNonIncreasingDocids) {
  auto part = alloc_.Allocate(32);
  ASSERT_TRUE(part.ok());
  InvertedIndexLog::Options opts;
  InvertedIndexLog index(*part, &gauge_, opts);
  ASSERT_TRUE(index.Init().ok());
  std::map<std::string, uint32_t> tf = {{"x", 1}};
  ASSERT_TRUE(index.AddDocument(5, tf).ok());
  EXPECT_EQ(index.AddDocument(5, tf).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index.AddDocument(4, tf).code(), StatusCode::kInvalidArgument);
}

TEST_F(SearchEngineTest, DocumentFrequencyCounts) {
  auto part = alloc_.Allocate(32);
  ASSERT_TRUE(part.ok());
  InvertedIndexLog::Options opts;
  InvertedIndexLog index(*part, &gauge_, opts);
  ASSERT_TRUE(index.Init().ok());
  for (uint32_t d = 1; d <= 10; ++d) {
    std::map<std::string, uint32_t> tf;
    tf["everywhere"] = 1;
    if (d % 2 == 0) {
      tf["evens"] = 1;
    }
    ASSERT_TRUE(index.AddDocument(d, tf).ok());
  }
  auto df1 = index.DocumentFrequency("everywhere");
  auto df2 = index.DocumentFrequency("evens");
  auto df3 = index.DocumentFrequency("absent");
  ASSERT_TRUE(df1.ok());
  ASSERT_TRUE(df2.ok());
  ASSERT_TRUE(df3.ok());
  EXPECT_EQ(*df1, 10u);
  EXPECT_EQ(*df2, 5u);
  EXPECT_EQ(*df3, 0u);
}

TEST_F(SearchEngineTest, QueryIoCostScalesWithChainNotCorpus) {
  // Pipeline merge reads each touched bucket page at most twice (two-pass),
  // never the whole index.
  auto engine = NewEngine(/*blocks=*/128, /*buffer_bytes=*/512);
  for (int i = 0; i < 200; ++i) {
    // "rare" appears in 5 documents; the rest only share other terms.
    std::string text = (i % 40 == 0) ? "rare event" : "ordinary event";
    ASSERT_TRUE(engine->AddDocument(text).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());

  chip_.ResetStats();
  auto results = engine->Search({"rare"}, 10);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 5u);
  uint64_t reads = chip_.stats().page_reads;
  EXPECT_LT(reads, engine->num_index_pages());  // far below a full scan
}

}  // namespace
}  // namespace pds::search
