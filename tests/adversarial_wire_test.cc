// Adversarial-wire hardening, end to end: the scenario harness runs every
// [TNP14] protocol plus the packed round under seed-driven link faults, a
// malicious SSI, hostile session frames and token churn, over both the
// in-process queue pair and real Unix-domain sockets. Benign cells must be
// byte-identical to the in-process protocols; every tampering action must
// be caught by an IntegrityVerdict or the wire layer's own forensics; the
// same seed must realize the same injection log.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "crypto/paillier.h"
#include "net/scenario.h"
#include "net/ssi_server.h"
#include "net/token_client.h"
#include "pds/pds_node.h"

namespace pds::net {
namespace {

using global::AggFunc;
using global::Participant;
using global::SourceTuple;

// ---------------------------------------------------------------------------
// Shared fleet + packed context for scenario cells

struct ScenarioFleet {
  std::vector<std::unique_ptr<mcu::SecureToken>> tokens;
  std::vector<Participant> participants;
  std::unique_ptr<mcu::SecureToken> verifier;
  std::vector<std::string> domain;
  std::unique_ptr<crypto::PackedAggregate> packed;
  global::PackedPaillierProtocol::Config packed_cfg;
};

ScenarioFleet MakeScenarioFleet(size_t n) {
  ScenarioFleet f;
  crypto::SymmetricKey fleet_key = crypto::KeyFromString("adversarial-test");
  for (uint64_t i = 0; i < n; ++i) {
    mcu::SecureToken::Config cfg;
    cfg.token_id = i;
    cfg.fleet_key = fleet_key;
    cfg.rng_seed = 100 + i;
    f.tokens.push_back(std::make_unique<mcu::SecureToken>(cfg));
  }
  Rng rng(55);
  for (uint64_t i = 0; i < n; ++i) {
    Participant p;
    p.token = f.tokens[i].get();
    int tuples = 3 + static_cast<int>(rng.Uniform(4));
    for (int t = 0; t < tuples; ++t) {
      SourceTuple st;
      st.group = "city-" + std::to_string(rng.Uniform(5));
      st.value = static_cast<double>(rng.Uniform(100));
      p.tuples.push_back(std::move(st));
    }
    f.participants.push_back(std::move(p));
  }
  mcu::SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = fleet_key;
  f.verifier = std::make_unique<mcu::SecureToken>(vcfg);

  for (int i = 0; i < 5; ++i) {
    f.domain.push_back("city-" + std::to_string(i));
  }
  Rng key_rng(42);
  auto paillier = crypto::Paillier::Generate(256, &key_rng);
  EXPECT_TRUE(paillier.ok());
  auto packed = crypto::PackedAggregate::Create(
      *paillier, n, /*max_value=*/4096, 2 * f.domain.size());
  EXPECT_TRUE(packed.ok());
  f.packed =
      std::make_unique<crypto::PackedAggregate>(std::move(packed).value());
  f.packed_cfg.domain = f.domain;
  f.packed_cfg.max_slot_value = 4096;
  f.packed_cfg.paillier_bits = 256;
  f.packed_cfg.key_seed = 42;
  return f;
}

void FillSpec(ScenarioSpec* spec, ScenarioFleet* fleet) {
  spec->participants = fleet->participants;
  spec->verifier = fleet->verifier.get();
  spec->domain = fleet->domain;
  spec->packed = fleet->packed.get();
  spec->packed_cfg = fleet->packed_cfg;
}

/// Runs the whole default matrix and asserts the hardening guarantees cell
/// by cell: benign => byte-identical, expects_detection => detected. The
/// injection log (reproducible from the seed) is printed on any failure.
void RunMatrix(uint64_t seed, bool use_socket) {
  ScenarioFleet fleet = MakeScenarioFleet(4);
  size_t benign_cells = 0;
  size_t detection_cells = 0;
  for (ScenarioSpec& spec : DefaultMatrix(seed, use_socket)) {
    FillSpec(&spec, &fleet);
    auto cell = RunScenarioCell(spec);
    ASSERT_TRUE(cell.ok()) << spec.name << ": " << cell.status().ToString();
    const ScenarioResult& r = cell.value();
    SCOPED_TRACE(r.name + " (seed " + std::to_string(seed) +
                 ")\ninjection log:\n" + r.injection_log);
    if (r.benign) {
      ++benign_cells;
      EXPECT_TRUE(r.ran_ok) << r.error;
      EXPECT_TRUE(r.byte_identical)
          << "benign cell diverged from the in-process protocol";
      EXPECT_EQ(r.injections, 0u);
      EXPECT_EQ(r.frame_rejects, 0u);
    }
    if (r.expects_detection) {
      ++detection_cells;
      EXPECT_TRUE(r.detected) << "undetected adversary: " << r.detection
                              << " error: " << r.error;
    }
    // The wire never shows the SSI a plaintext group except the histogram
    // protocol's bucketed payloads, which [TNP14] accepts by design.
    if (r.ran_ok && spec.protocol != WireProtocol::kHistogram &&
        !spec.sealed_round) {
      EXPECT_FALSE(r.leakage.plaintext_groups_visible) << r.name;
    }
  }
  // 5 protocols benign + sealed/benign; every adversary/damage/churn cell
  // expects detection. Guards against the matrix silently shrinking.
  EXPECT_EQ(benign_cells, 6u);
  EXPECT_GE(detection_cells, 15u);
}

TEST(AdversarialMatrixTest, InProcessMatrixHoldsGuarantees) {
  RunMatrix(/*seed=*/21, /*use_socket=*/false);
}

TEST(AdversarialMatrixTest, SocketMatrixHoldsGuarantees) {
  RunMatrix(/*seed=*/22, /*use_socket=*/true);
}

TEST(AdversarialMatrixTest, SameSeedRealizesSameInjectionLog) {
  // Determinism is the whole reproduction story: a failing cell's seed must
  // replay the exact same fault sequence.
  ScenarioFleet fleet = MakeScenarioFleet(4);
  auto run_bitflip_cell = [&](uint64_t seed) -> std::string {
    ScenarioSpec spec;
    spec.name = "secure-agg/bitflip";
    spec.protocol = WireProtocol::kSecureAgg;
    spec.faults.seed = seed;
    spec.faults.bitflip_rate = 1.0;
    spec.faults.max_injections = 2;
    spec.faults.skip_first = 2;
    spec.checksum_frames = true;
    spec.quorum = 0.6;
    FillSpec(&spec, &fleet);
    auto cell = RunScenarioCell(spec);
    EXPECT_TRUE(cell.ok()) << cell.status().ToString();
    EXPECT_TRUE(cell->ran_ok) << cell->error;
    EXPECT_GE(cell->injections, 1u);
    return cell->injection_log;
  };
  std::string first = run_bitflip_cell(77);
  std::string second = run_bitflip_cell(77);
  EXPECT_EQ(first, second);
  // A different seed draws different bit/byte positions, so the realized
  // log differs — the log plus seed pin down the exact fault sequence.
  EXPECT_NE(first, run_bitflip_cell(78));
}

TEST(AdversarialMatrixTest, RecoverableFaultsDoNotWidenLeakage) {
  // Wire-leakage bound: a lossy/duplicating link may cost retries but must
  // not change what the SSI observes — same tuple count, same class count,
  // never a plaintext group.
  ScenarioFleet fleet = MakeScenarioFleet(4);
  auto run_cell = [&](double FaultPlan::* rate) -> ScenarioResult {
    ScenarioSpec spec;
    spec.name = "leakage-cell";
    spec.protocol = WireProtocol::kSecureAgg;
    spec.faults.seed = 31;
    if (rate != nullptr) {
      spec.faults.*rate = 1.0;
      spec.faults.skip_first = 2;
      spec.faults.max_injections = 2;
    }
    FillSpec(&spec, &fleet);
    auto cell = RunScenarioCell(spec);
    EXPECT_TRUE(cell.ok()) << cell.status().ToString();
    EXPECT_TRUE(cell->ran_ok) << cell->error;
    return std::move(cell).value();
  };
  ScenarioResult benign = run_cell(nullptr);
  for (double FaultPlan::* rate :
       {&FaultPlan::drop_rate, &FaultPlan::duplicate_rate,
        &FaultPlan::reorder_rate}) {
    ScenarioResult faulty = run_cell(rate);
    EXPECT_EQ(faulty.leakage.tuples_observed, benign.leakage.tuples_observed);
    EXPECT_EQ(faulty.leakage.distinct_classes,
              benign.leakage.distinct_classes);
    EXPECT_FALSE(faulty.leakage.plaintext_groups_visible);
    EXPECT_TRUE(faulty.byte_identical);
  }
}

// ---------------------------------------------------------------------------
// Handshake re-verification on reconnect

TEST(HandshakeReverificationTest, StaleProofIsRejected) {
  // A returning token must answer the *fresh* challenge; replaying the
  // proof it computed for an earlier session's nonce is refused.
  crypto::SymmetricKey fleet_key = crypto::KeyFromString("adversarial-test");
  mcu::SecureToken::Config tcfg;
  tcfg.token_id = 1;
  tcfg.fleet_key = fleet_key;
  mcu::SecureToken token(tcfg);
  mcu::SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = fleet_key;
  mcu::SecureToken verifier(vcfg);

  SsiServer::Config scfg;
  scfg.verifier = &verifier;
  scfg.deadline_ms = ScaledMs(2000);
  SsiServer server(scfg);

  // Session 1: honest handshake, and keep the proof around.
  auto [server1, client1] = InProcessTransport::CreatePair();
  crypto::Sha256::Digest stale_proof{};
  std::thread honest([&] {
    auto frame = client1->Recv(ScaledMs(2000));
    ASSERT_TRUE(frame.ok());
    auto challenge = DecodeAs<ChallengeMsg>(ByteView(*frame));
    ASSERT_TRUE(challenge.ok());
    auto proof = token.Attest(ByteView(challenge->nonce));
    ASSERT_TRUE(proof.ok());
    stale_proof = *proof;
    HelloMsg hello;
    hello.token_id = 1;
    hello.proof = *proof;
    ASSERT_TRUE(client1->Send(EncodeHello(hello)).ok());
    auto ack = client1->Recv(ScaledMs(2000));
    ASSERT_TRUE(ack.ok());
  });
  auto idx = server.AcceptSession(std::move(server1));
  honest.join();
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();

  // Session 2: the challenge nonce is new, so the recorded proof is stale.
  auto [server2, client2] = InProcessTransport::CreatePair();
  std::thread replayer([&] {
    auto frame = client2->Recv(ScaledMs(2000));
    ASSERT_TRUE(frame.ok());
    HelloMsg hello;
    hello.token_id = 1;
    hello.proof = stale_proof;  // replayed, not recomputed
    ASSERT_TRUE(client2->Send(EncodeHello(hello)).ok());
    auto ack = client2->Recv(ScaledMs(2000));
    ASSERT_TRUE(ack.ok());
    auto decoded = DecodeAs<HelloAckMsg>(ByteView(*ack));
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(decoded->accepted);
  });
  auto refused = server.AcceptSession(std::move(server2));
  replayer.join();
  EXPECT_EQ(refused.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(server.num_sessions(), 1u);
}

TEST(HandshakeReverificationTest, ReadmitRefusedWhileRunActive) {
  // Mid-run readmission would hand a half-finished round to a rejoining
  // token; the server refuses and the abandoned round degrades to quorum.
  crypto::SymmetricKey fleet_key = crypto::KeyFromString("adversarial-test");
  std::vector<std::unique_ptr<mcu::SecureToken>> tokens;
  std::vector<std::unique_ptr<TokenClient>> clients;
  for (uint64_t i = 0; i < 3; ++i) {
    mcu::SecureToken::Config cfg;
    cfg.token_id = i;
    cfg.fleet_key = fleet_key;
    cfg.rng_seed = 100 + i;
    tokens.push_back(std::make_unique<mcu::SecureToken>(cfg));
  }
  mcu::SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = fleet_key;
  mcu::SecureToken verifier(vcfg);

  SsiServer::Config scfg;
  scfg.verifier = &verifier;
  scfg.deadline_ms = ScaledMs(300);
  scfg.max_retries = 0;
  scfg.quorum = 0.6;
  SsiServer server(scfg);
  for (uint64_t i = 0; i < 3; ++i) {
    auto [server_end, client_end] = InProcessTransport::CreatePair();
    TokenClient::Config ccfg;
    ccfg.token = tokens[i].get();
    ccfg.tuples = {{"city-1", 10.0 + static_cast<double>(i)}};
    if (i == 0) {
      // Token 0 swallows everything: the run stays in flight until its
      // deadline, giving the main thread a window to attempt a readmit.
      ccfg.faults.seed = 5;
      ccfg.faults.swallow_first = 100;
    }
    auto client =
        std::make_unique<TokenClient>(std::move(client_end), std::move(ccfg));
    client->Start();
    ASSERT_TRUE(server.AcceptSession(std::move(server_end)).ok());
    clients.push_back(std::move(client));
  }

  Result<global::AggOutput> output = Status::Internal("unset");
  std::thread run([&] { output = server.RunSecureAggregation(AggFunc::kSum); });
  std::this_thread::sleep_for(std::chrono::milliseconds(ScaledMs(30)));
  auto [readmit_server, readmit_client] = InProcessTransport::CreatePair();
  auto refused = server.ReadmitSession(std::move(readmit_server));
  run.join();
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition)
      << (refused.ok() ? "readmit unexpectedly succeeded"
                       : refused.status().ToString());
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(server.last_report().responders, 2u);

  // Once the run is over, the same transport kind readmits cleanly via a
  // fresh challenge, and the next run covers the full fleet again.
  server.Shutdown();
  for (auto& c : clients) {
    c->Stop();
    (void)c->Join();
  }
}

// ---------------------------------------------------------------------------
// Policy-checked export across PDS nodes under a tampered manifest

node::PdsNode::Config SmallNodeConfig(uint64_t id,
                                      const crypto::SymmetricKey& key) {
  node::PdsNode::Config cfg;
  cfg.node_id = id;
  cfg.fleet_key = key;
  cfg.flash_geometry.page_size = 512;
  cfg.flash_geometry.pages_per_block = 8;
  cfg.flash_geometry.block_count = 256;
  cfg.rng_seed = id;
  return cfg;
}

TEST(TamperedManifestTest, CrossPdsExportRefused) {
  // The authorization manifest is the token-resident rule set: the share
  // rule names exactly the columns the owner agreed to export. A tampered
  // manifest (the value column's grant stripped) must cause the node to
  // refuse the export before a single tuple reaches the wire, land a
  // denial in the audit trail, and keep the session out of the round.
  using embdb::ColumnType;
  using embdb::Schema;
  using embdb::Tuple;
  using embdb::Value;
  crypto::SymmetricKey fleet_key = crypto::KeyFromString("adversarial-test");

  auto make_node = [&](uint64_t id, bool tampered) {
    auto pds_node =
        std::make_unique<node::PdsNode>(SmallNodeConfig(id, fleet_key));
    Schema bills("bills", {{"id", ColumnType::kUint64, ""},
                           {"city", ColumnType::kString, ""},
                           {"amount", ColumnType::kDouble, ""}});
    EXPECT_TRUE(pds_node->DefineTable(bills).ok());
    pds_node->policies().AddRule(
        {"owner", ac::Action::kInsert, "bills", {}, std::nullopt});
    if (tampered) {
      // The share grant lost the value column: exporting (city, amount)
      // is no longer covered and must be denied outright.
      pds_node->policies().AddRule({"stats-agency", ac::Action::kShare,
                                    "bills", {"city"}, std::nullopt});
    } else {
      pds_node->policies().AddRule({"stats-agency", ac::Action::kShare,
                                    "bills", {"city", "amount"},
                                    std::nullopt});
    }
    ac::Subject owner{"owner", "user-" + std::to_string(id)};
    Tuple t = {Value::U64(1), Value::Str("lyon"),
               Value::F64(100.0 * static_cast<double>(id))};
    EXPECT_TRUE(pds_node->InsertAs(owner, "bills", t).ok());
    return pds_node;
  };
  auto honest = make_node(1, /*tampered=*/false);
  auto compromised = make_node(2, /*tampered=*/true);

  mcu::SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = fleet_key;
  mcu::SecureToken verifier(vcfg);
  SsiServer::Config scfg;
  scfg.verifier = &verifier;
  scfg.deadline_ms = ScaledMs(150);
  scfg.quorum = 0.5;
  SsiServer server(scfg);

  std::vector<std::unique_ptr<TokenClient>> clients;
  size_t admitted = 0;
  for (node::PdsNode* pds_node : {honest.get(), compromised.get()}) {
    auto [server_end, client_end] = InProcessTransport::CreatePair();
    TokenClient::Config ccfg;
    ccfg.pds_node = pds_node;
    ccfg.subject = {"stats-agency", "insee"};
    ccfg.table = "bills";
    ccfg.group_column = "city";
    ccfg.value_column = "amount";
    ccfg.deadline_ms = ScaledMs(2000);
    auto client =
        std::make_unique<TokenClient>(std::move(client_end), std::move(ccfg));
    client->Start();
    auto idx = server.AcceptSession(std::move(server_end));
    if (idx.ok()) {
      ++admitted;
    }
    clients.push_back(std::move(client));
  }
  // The compromised node never enters the handshake: its export was
  // refused inside the node, so the server's challenge goes unanswered.
  EXPECT_EQ(admitted, 1u);

  auto output = server.RunSecureAggregation(AggFunc::kSum);
  server.Shutdown();
  Status honest_loop = clients[0]->Join();
  clients[1]->Stop();
  Status compromised_loop = clients[1]->Join();

  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(output->groups.size(), 1u);
  EXPECT_EQ(output->groups["lyon"], 100.0);  // the honest node's row only
  EXPECT_TRUE(honest_loop.ok()) << honest_loop.ToString();
  EXPECT_EQ(compromised_loop.code(), StatusCode::kPermissionDenied)
      << compromised_loop.ToString();

  // The refusal is accountable: the tampered node audited a denial.
  auto audit = compromised->ReadAuditLog();
  ASSERT_TRUE(audit.ok());
  bool denial_logged = false;
  for (const std::string& entry : *audit) {
    if (entry.find("share") != std::string::npos &&
        entry.find("DENY") != std::string::npos) {
      denial_logged = true;
    }
  }
  EXPECT_TRUE(denial_logged);
}

}  // namespace
}  // namespace pds::net
