// The simulation tier's anchor property: for any scenario expressible on
// the loopback wire, a SimTransport run must be byte-identical to an
// InProcessTransport run — same frames in the same order on every session
// (observed through a FrameTap on the server side of each link), same
// aggregate groups and wire metrics, same RoundReport, and the same
// realized fault injections (InjectionLog), across seeds × fleet sizes ×
// fault plans. A cell where both runs fail identically anchors too: the
// simulator must reproduce failures, not just successes.
//
// Faults come from the existing seed-deterministic FaultInjectingTransport
// wrapped over either transport — same seed over the same frame sequence
// realizes the same injections, which is exactly what the property checks.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "crypto/cipher.h"
#include "global/agg_protocols.h"
#include "global/common.h"
#include "mcu/secure_token.h"
#include "net/fault_injection.h"
#include "net/ssi_server.h"
#include "net/token_client.h"
#include "net/transport.h"
#include "sim/link_model.h"
#include "sim/sim_clock.h"
#include "sim/sim_transport.h"

namespace pds::sim {
namespace {

using global::AggFunc;
using global::SourceTuple;
using mcu::SecureToken;
using net::FaultInjectingTransport;
using net::FaultPlan;
using net::InjectionLog;
using net::InProcessTransport;
using net::SsiServer;
using net::TokenClient;
using net::Transport;

struct AnchorCell {
  std::string name;
  size_t fleet_size = 2;
  uint64_t seed = 1;
  /// Link faults wrap session 0's server side; swallow_first goes to
  /// token 0 — the same placement the adversarial scenario harness uses.
  FaultPlan faults;
};

struct Fleet {
  std::vector<std::unique_ptr<SecureToken>> tokens;
  std::vector<std::vector<SourceTuple>> tuples;
  std::unique_ptr<SecureToken> verifier;
};

Fleet MakeFleet(uint64_t seed, size_t n) {
  Fleet fleet;
  crypto::SymmetricKey key = crypto::KeyFromString("sim-anchor");
  Rng rng(seed);
  fleet.tokens.reserve(n);
  fleet.tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SecureToken::Config cfg;
    cfg.token_id = 100 + i;
    cfg.fleet_key = key;
    cfg.rng_seed = 100 + i;
    fleet.tokens.push_back(std::make_unique<SecureToken>(cfg));
    std::vector<SourceTuple> tuples;
    tuples.reserve(4);
    for (int t = 0; t < 4; ++t) {
      SourceTuple st;
      st.group = "city-" + std::to_string(rng.Uniform(3));
      st.value = static_cast<double>(rng.Uniform(100));
      tuples.push_back(std::move(st));
    }
    fleet.tuples.push_back(std::move(tuples));
  }
  SecureToken::Config vcfg;
  vcfg.token_id = 9000;
  vcfg.fleet_key = key;
  vcfg.rng_seed = 9000;
  fleet.verifier = std::make_unique<SecureToken>(vcfg);
  return fleet;
}

/// Everything one wire run produced that the anchor compares.
struct WireRun {
  bool ok = false;
  std::string error;
  std::map<std::string, double> groups;
  uint64_t rounds = 0;
  uint64_t bytes = 0;
  uint64_t bytes_token_to_ssi = 0;
  uint64_t bytes_ssi_to_token = 0;
  uint64_t tokens_missing = 0;
  SsiServer::RoundReport report;
  /// Per session: the wire frames the server side actually saw, in order.
  std::vector<std::vector<FrameTap::Entry>> taps;
  std::vector<std::string> link_logs;   // per session, "" when unfaulted
  std::vector<std::string> token_logs;  // per session
};

SsiServer::Config ServerConfig(const Fleet& fleet, Clock* clock) {
  SsiServer::Config cfg;
  cfg.partition_capacity = 8;  // forces aggregate/finalize rounds
  cfg.deadline_ms = clock == nullptr ? ScaledMs(100) : 100;
  cfg.max_retries = 2;
  cfg.backoff_ms = 1;
  cfg.quorum = 1.0;
  cfg.executor = nullptr;  // serial: frame order must be deterministic
  cfg.verifier = fleet.verifier.get();
  cfg.clock = clock;
  return cfg;
}

/// Wraps a server-side endpoint so the tap sees the actual wire bytes:
/// the server talks through the fault wrapper, which mutates frames
/// before handing them to the tap.
struct ServerSide {
  std::unique_ptr<Transport> transport;
  FrameTap* tap = nullptr;
};

ServerSide WrapServerSide(std::unique_ptr<Transport> base,
                          const FaultPlan& faults, InjectionLog* log,
                          Clock* clock, bool faulted) {
  ServerSide side;
  auto tap = std::make_unique<FrameTap>(std::move(base));
  side.tap = tap.get();
  if (faulted) {
    FaultPlan link = faults;
    link.skip_first = 2;  // let the attestation handshake through
    side.transport = std::make_unique<FaultInjectingTransport>(
        std::move(tap), link, log, clock);
  } else {
    side.transport = std::move(tap);
  }
  return side;
}

TokenClient::Config ClientConfig(const Fleet& fleet, size_t i,
                                 const AnchorCell& cell, Clock* clock) {
  TokenClient::Config ccfg;
  ccfg.token = fleet.tokens[i].get();
  ccfg.tuples = fleet.tuples[i];
  ccfg.deadline_ms = clock == nullptr ? ScaledMs(2000) : 2000;
  ccfg.poll_ms = 5;
  ccfg.clock = clock;
  if (i == 0 && cell.faults.swallow_first > 0) {
    ccfg.faults.seed = cell.faults.seed;
    ccfg.faults.swallow_first = cell.faults.swallow_first;
  }
  return ccfg;
}

void Distill(Result<global::AggOutput>* out, SsiServer* server,
             WireRun* run) {
  run->ok = out->ok();
  if (out->ok()) {
    run->groups = (*out)->groups;
    run->rounds = (*out)->metrics.rounds;
    run->bytes = (*out)->metrics.bytes;
    run->bytes_token_to_ssi = (*out)->metrics.bytes_token_to_ssi;
    run->bytes_ssi_to_token = (*out)->metrics.bytes_ssi_to_token;
    run->tokens_missing = (*out)->metrics.tokens_missing;
  } else {
    run->error = out->status().ToString();
  }
  run->report = server->last_report();
}

/// The reference run: real threads, blocking clients, InProcess queues.
WireRun RunWall(const AnchorCell& cell) {
  WireRun run;
  Fleet fleet = MakeFleet(cell.seed, cell.fleet_size);
  SsiServer server(ServerConfig(fleet, nullptr));

  std::vector<std::unique_ptr<TokenClient>> clients;
  std::vector<FrameTap*> taps;
  std::vector<std::unique_ptr<InjectionLog>> logs;
  clients.reserve(cell.fleet_size);
  taps.reserve(cell.fleet_size);
  logs.reserve(cell.fleet_size);
  for (size_t i = 0; i < cell.fleet_size; ++i) {
    auto [client_side, server_base] = InProcessTransport::CreatePair();
    logs.push_back(std::make_unique<InjectionLog>());
    ServerSide side = WrapServerSide(
        std::move(server_base), cell.faults, logs.back().get(),
        /*clock=*/nullptr, i == 0 && cell.faults.has_link_faults());
    taps.push_back(side.tap);
    clients.push_back(std::make_unique<TokenClient>(
        std::move(client_side), ClientConfig(fleet, i, cell, nullptr)));
    clients.back()->Start();
    auto accepted = server.AcceptSession(std::move(side.transport));
    EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
  }

  auto out = server.RunSecureAggregation(AggFunc::kSum);
  Distill(&out, &server, &run);
  server.Shutdown();
  run.taps.reserve(cell.fleet_size);
  run.link_logs.reserve(cell.fleet_size);
  run.token_logs.reserve(cell.fleet_size);
  for (size_t i = 0; i < cell.fleet_size; ++i) {
    clients[i]->Stop();
    (void)clients[i]->Join();
    run.taps.push_back(taps[i]->entries());
    run.link_logs.push_back(logs[i]->ToString());
    run.token_logs.push_back(clients[i]->injection_log().ToString());
  }
  return run;
}

/// The simulated run: one thread, virtual time, pumped clients.
WireRun RunSim(const AnchorCell& cell) {
  WireRun run;
  Fleet fleet = MakeFleet(cell.seed, cell.fleet_size);
  SimClock clock;
  SimNet net(&clock, LinkModel{}, cell.seed ^ 0x6c696e6bull);
  SsiServer server(ServerConfig(fleet, &clock));

  std::vector<std::unique_ptr<TokenClient>> clients;
  std::vector<FrameTap*> taps;
  std::vector<std::unique_ptr<InjectionLog>> logs;
  clients.reserve(cell.fleet_size);
  taps.reserve(cell.fleet_size);
  logs.reserve(cell.fleet_size);
  for (size_t i = 0; i < cell.fleet_size; ++i) {
    auto [server_base, client_side] = net.CreatePair();
    SimTransport* client_raw = client_side.get();
    logs.push_back(std::make_unique<InjectionLog>());
    ServerSide side = WrapServerSide(
        std::move(server_base), cell.faults, logs.back().get(), &clock,
        i == 0 && cell.faults.has_link_faults());
    taps.push_back(side.tap);
    clients.push_back(std::make_unique<TokenClient>(
        std::move(client_side), ClientConfig(fleet, i, cell, &clock)));
    TokenClient* client = clients.back().get();
    EXPECT_TRUE(client->StartPumped().ok());
    client_raw->set_on_frame([client] { (void)client->PumpOnce(); });
    auto accepted = server.AcceptSession(std::move(side.transport));
    EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
  }

  auto out = server.RunSecureAggregation(AggFunc::kSum);
  Distill(&out, &server, &run);
  server.Shutdown();
  run.taps.reserve(cell.fleet_size);
  run.link_logs.reserve(cell.fleet_size);
  run.token_logs.reserve(cell.fleet_size);
  for (size_t i = 0; i < cell.fleet_size; ++i) {
    run.taps.push_back(taps[i]->entries());
    run.link_logs.push_back(logs[i]->ToString());
    run.token_logs.push_back(clients[i]->injection_log().ToString());
  }
  return run;
}

void ExpectIdentical(const WireRun& wall, const WireRun& sim,
                     const std::string& cell) {
  EXPECT_EQ(wall.ok, sim.ok) << cell << ": outcome diverged (wall: "
                             << wall.error << " sim: " << sim.error << ")";
  if (!wall.ok && !sim.ok) {
    EXPECT_EQ(wall.error, sim.error) << cell;
  }
  EXPECT_EQ(wall.groups, sim.groups) << cell;
  EXPECT_EQ(wall.rounds, sim.rounds) << cell;
  EXPECT_EQ(wall.bytes, sim.bytes) << cell;
  EXPECT_EQ(wall.bytes_token_to_ssi, sim.bytes_token_to_ssi) << cell;
  EXPECT_EQ(wall.bytes_ssi_to_token, sim.bytes_ssi_to_token) << cell;
  EXPECT_EQ(wall.tokens_missing, sim.tokens_missing) << cell;
  EXPECT_EQ(wall.report.responders, sim.report.responders) << cell;
  EXPECT_EQ(wall.report.retries, sim.report.retries) << cell;
  EXPECT_EQ(wall.report.deadline_hits, sim.report.deadline_hits) << cell;
  EXPECT_EQ(wall.report.missing_tokens, sim.report.missing_tokens) << cell;
  EXPECT_EQ(wall.report.frame_rejects, sim.report.frame_rejects) << cell;
  ASSERT_EQ(wall.taps.size(), sim.taps.size()) << cell;
  for (size_t i = 0; i < wall.taps.size(); ++i) {
    const auto& w = wall.taps[i];
    const auto& s = sim.taps[i];
    ASSERT_EQ(w.size(), s.size())
        << cell << ": session " << i << " frame count diverged";
    for (size_t f = 0; f < w.size(); ++f) {
      EXPECT_EQ(w[f].outbound, s[f].outbound)
          << cell << ": session " << i << " frame " << f;
      EXPECT_EQ(w[f].frame, s[f].frame)
          << cell << ": session " << i << " frame " << f
          << " bytes diverged";
    }
  }
  EXPECT_EQ(wall.link_logs, sim.link_logs) << cell;
  EXPECT_EQ(wall.token_logs, sim.token_logs) << cell;
}

std::vector<AnchorCell> FaultMatrix() {
  std::vector<AnchorCell> plans;
  plans.reserve(8);
  AnchorCell benign;
  benign.name = "benign";
  plans.push_back(benign);

  AnchorCell drop;
  drop.name = "drop";
  drop.faults.drop_rate = 0.3;
  drop.faults.max_injections = 2;
  plans.push_back(drop);

  AnchorCell bitflip;
  bitflip.name = "bitflip";
  bitflip.faults.bitflip_rate = 0.4;
  bitflip.faults.max_injections = 3;
  plans.push_back(bitflip);

  AnchorCell truncate;
  truncate.name = "truncate";
  truncate.faults.truncate_rate = 0.4;
  truncate.faults.max_injections = 2;
  plans.push_back(truncate);

  AnchorCell dup;
  dup.name = "dup-reorder";
  dup.faults.duplicate_rate = 0.3;
  dup.faults.reorder_rate = 0.3;
  dup.faults.max_injections = 4;
  plans.push_back(dup);

  AnchorCell delay;
  delay.name = "delay";
  delay.faults.delay_rate = 0.5;
  delay.faults.delay_ms = 10;
  delay.faults.max_injections = 2;
  plans.push_back(delay);

  AnchorCell swallow;
  swallow.name = "swallow";
  swallow.faults.swallow_first = 2;
  plans.push_back(swallow);
  return plans;
}

TEST(SimAnchorTest, ByteIdenticalAcrossSeedsSizesAndFaultPlans) {
  for (const AnchorCell& plan : FaultMatrix()) {
    for (size_t fleet_size : {size_t{2}, size_t{3}}) {
      for (uint64_t seed : {uint64_t{1}, uint64_t{2}}) {
        AnchorCell cell = plan;
        cell.fleet_size = fleet_size;
        cell.seed = seed;
        cell.faults.seed = seed * 31 + 7;
        const std::string label = cell.name + "/n=" +
                                  std::to_string(fleet_size) +
                                  "/seed=" + std::to_string(seed);
        WireRun wall = RunWall(cell);
        WireRun sim = RunSim(cell);
        ExpectIdentical(wall, sim, label);
      }
    }
  }
}

TEST(SimAnchorTest, IdenticalSeedsReproduceIdenticalSimRuns) {
  AnchorCell cell;
  cell.name = "repro";
  cell.fleet_size = 4;
  cell.seed = 9;
  cell.faults.seed = 40;
  cell.faults.drop_rate = 0.2;
  cell.faults.max_injections = 3;
  WireRun a = RunSim(cell);
  WireRun b = RunSim(cell);
  ExpectIdentical(a, b, "sim-vs-sim");

  cell.seed = 10;  // a different seed must actually change something
  WireRun c = RunSim(cell);
  bool same_tuples = true;
  for (size_t i = 0; same_tuples && i < a.taps.size(); ++i) {
    same_tuples = a.taps[i].size() == c.taps[i].size();
    for (size_t f = 0; same_tuples && f < a.taps[i].size(); ++f) {
      same_tuples = a.taps[i][f].frame == c.taps[i][f].frame;
    }
  }
  EXPECT_FALSE(same_tuples) << "changing the seed changed nothing";
}

}  // namespace
}  // namespace pds::sim
