#include <gtest/gtest.h>

#include "crypto/sra.h"
#include "global/toolkit.h"

namespace pds::global {
namespace {

TEST(SraTest, EncryptDecryptRoundTrip) {
  Rng rng(1);
  crypto::BigInt p = crypto::SraCipher::GeneratePrime(128, &rng);
  auto cipher = crypto::SraCipher::Create(p, &rng);
  ASSERT_TRUE(cipher.ok());
  auto x = cipher->EncodeItem("hello");
  ASSERT_TRUE(x.ok());
  auto ct = cipher->Encrypt(*x);
  ASSERT_TRUE(ct.ok());
  auto pt = cipher->Decrypt(*ct);
  ASSERT_TRUE(pt.ok());
  auto item = cipher->DecodeItem(*pt);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(*item, "hello");
}

TEST(SraTest, Commutativity) {
  Rng rng(2);
  crypto::BigInt p = crypto::SraCipher::GeneratePrime(128, &rng);
  auto c1 = crypto::SraCipher::Create(p, &rng);
  auto c2 = crypto::SraCipher::Create(p, &rng);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto x = c1->EncodeItem("commute");
  ASSERT_TRUE(x.ok());

  auto e12 = c2->Encrypt(*c1->Encrypt(*x));
  auto e21 = c1->Encrypt(*c2->Encrypt(*x));
  ASSERT_TRUE(e12.ok());
  ASSERT_TRUE(e21.ok());
  EXPECT_EQ(*e12, *e21);

  // Decryption in either order recovers the item.
  auto d = c1->Decrypt(*c2->Decrypt(*e12));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*c1->DecodeItem(*d), "commute");
}

TEST(SraTest, RejectsOversizedItem) {
  Rng rng(3);
  crypto::BigInt p = crypto::SraCipher::GeneratePrime(64, &rng);
  auto cipher = crypto::SraCipher::Create(p, &rng);
  ASSERT_TRUE(cipher.ok());
  EXPECT_FALSE(cipher->EncodeItem(std::string(20, 'x')).ok());
}

TEST(SecureSumTest, MatchesPlainSum) {
  Rng rng(4);
  std::vector<uint64_t> values = {10, 25, 7, 100, 3};
  Metrics metrics;
  auto sum = SecureSum(values, 1ULL << 32, &rng, &metrics);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 145u);
  EXPECT_EQ(metrics.messages, values.size() + 1);
}

TEST(SecureSumTest, ZeroValuesAndWraparound) {
  Rng rng(5);
  Metrics metrics;
  auto sum = SecureSum({0, 0, 0}, 100, &rng, &metrics);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 0u);
  // Values summing beyond the modulus wrap (documented protocol behaviour).
  auto wrapped = SecureSum({60, 60, 60}, 100, &rng, &metrics);
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(*wrapped, 80u);
}

TEST(SecureSumTest, RejectsTooFewSites) {
  Rng rng(6);
  EXPECT_FALSE(SecureSum({1, 2}, 100, &rng, nullptr).ok());
}

TEST(SecureSumTest, RejectsOutOfRangeValue) {
  Rng rng(7);
  EXPECT_FALSE(SecureSum({1, 2, 200}, 100, &rng, nullptr).ok());
}

TEST(SecureSetUnionTest, ComputesUnion) {
  Rng rng(8);
  Metrics metrics;
  auto result = SecureSetUnion(
      {{"apple", "pear"}, {"pear", "plum"}, {"apple", "fig"}}, 128, &rng,
      &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<std::string> expected = {"apple", "pear", "plum", "fig"};
  EXPECT_EQ(*result, expected);
  EXPECT_GT(metrics.token_crypto_ops, 0u);
}

TEST(SecureSetUnionTest, DisjointAndIdenticalSets) {
  Rng rng(9);
  auto disjoint = SecureSetUnion({{"a"}, {"b"}}, 128, &rng, nullptr);
  ASSERT_TRUE(disjoint.ok());
  EXPECT_EQ(disjoint->size(), 2u);

  auto identical = SecureSetUnion({{"x", "y"}, {"x", "y"}}, 128, &rng,
                                  nullptr);
  ASSERT_TRUE(identical.ok());
  EXPECT_EQ(identical->size(), 2u);
}

TEST(SecureSetUnionTest, EmptySetsHandled) {
  Rng rng(10);
  auto result = SecureSetUnion({{}, {"only"}}, 128, &rng, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, std::set<std::string>{"only"});
}

TEST(SecureIntersectionSizeTest, CountsCommonItems) {
  Rng rng(11);
  Metrics metrics;
  auto size = SecureIntersectionSize(
      {{"a", "b", "c"}, {"b", "c", "d"}, {"c", "b", "e"}}, 128, &rng,
      &metrics);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 2u);  // b and c
}

TEST(SecureIntersectionSizeTest, EmptyIntersection) {
  Rng rng(12);
  auto size = SecureIntersectionSize({{"a"}, {"b"}}, 128, &rng, nullptr);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

TEST(SecureScalarProductTest, MatchesPlainDotProduct) {
  Rng rng(13);
  Metrics metrics;
  std::vector<uint64_t> a = {1, 2, 3, 4};
  std::vector<uint64_t> b = {10, 20, 30, 40};
  auto result = SecureScalarProduct(a, b, 256, &rng, &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 1 * 10 + 2 * 20 + 3 * 30 + 4 * 40u);
}

TEST(SecureScalarProductTest, ZeroVector) {
  Rng rng(14);
  auto result = SecureScalarProduct({0, 0}, {5, 7}, 256, &rng, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0u);
}

TEST(SecureScalarProductTest, RejectsLengthMismatch) {
  Rng rng(15);
  EXPECT_FALSE(SecureScalarProduct({1}, {1, 2}, 256, &rng, nullptr).ok());
}

TEST(PaillierFleetSumTest, MatchesPlainSum) {
  Rng rng(16);
  Metrics metrics;
  std::vector<uint64_t> values;
  uint64_t expected = 0;
  for (int i = 0; i < 30; ++i) {
    values.push_back(static_cast<uint64_t>(i) * 11);
    expected += values.back();
  }
  auto sum = PaillierFleetSum(values, 256, &rng, &metrics);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, expected);
  // One encryption per site + one decryption.
  EXPECT_EQ(metrics.token_crypto_ops, values.size() + 1);
  EXPECT_EQ(metrics.ssi_ops, values.size() - 1);
}

TEST(PaillierFleetSumTest, EmptyFleet) {
  Rng rng(17);
  auto sum = PaillierFleetSum({}, 128, &rng, nullptr);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 0u);
}

}  // namespace
}  // namespace pds::global
