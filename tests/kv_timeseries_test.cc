#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "common/rng.h"
#include "embdb/kv_store.h"
#include "embdb/timeseries.h"
#include "flash/flash.h"
#include "logstore/external_sort.h"
#include "mcu/calibration.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {
namespace {

flash::Geometry TestGeometry() {
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 1024;
  return g;
}

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest()
      : chip_(TestGeometry()), alloc_(&chip_), gauge_(64 * 1024) {
    auto values = alloc_.Allocate(64);
    auto keys = alloc_.Allocate(64);
    auto bloom = alloc_.Allocate(16);
    kv_ = std::make_unique<KvStore>(*values, *keys, *bloom, &gauge_,
                                    KvStore::Options{});
    EXPECT_TRUE(kv_->Init().ok());
  }

  std::string GetStr(const std::string& key) {
    auto v = kv_->Get(key);
    return v.ok() ? ByteView(*v).ToString() : "<" + v.status().ToString() + ">";
  }

  flash::FlashChip chip_;
  flash::PartitionAllocator alloc_;
  mcu::RamGauge gauge_;
  std::unique_ptr<KvStore> kv_;
};

TEST_F(KvStoreTest, PutGet) {
  ASSERT_TRUE(kv_->Put("name", ByteView(std::string_view("ada"))).ok());
  EXPECT_EQ(GetStr("name"), "ada");
}

TEST_F(KvStoreTest, MissingKey) {
  EXPECT_EQ(kv_->Get("ghost").status().code(), StatusCode::kNotFound);
  auto contains = kv_->Contains("ghost");
  ASSERT_TRUE(contains.ok());
  EXPECT_FALSE(*contains);
}

TEST_F(KvStoreTest, UpdateReturnsLatest) {
  ASSERT_TRUE(kv_->Put("k", ByteView(std::string_view("v1"))).ok());
  ASSERT_TRUE(kv_->Put("k", ByteView(std::string_view("v2"))).ok());
  ASSERT_TRUE(kv_->Put("k", ByteView(std::string_view("v3"))).ok());
  EXPECT_EQ(GetStr("k"), "v3");
  EXPECT_EQ(kv_->num_versions(), 3u);
}

TEST_F(KvStoreTest, DeleteThenReinsert) {
  ASSERT_TRUE(kv_->Put("k", ByteView(std::string_view("v1"))).ok());
  ASSERT_TRUE(kv_->Delete("k").ok());
  EXPECT_EQ(kv_->Get("k").status().code(), StatusCode::kNotFound);
  auto contains = kv_->Contains("k");
  ASSERT_TRUE(contains.ok());
  EXPECT_FALSE(*contains);

  ASSERT_TRUE(kv_->Put("k", ByteView(std::string_view("v2"))).ok());
  EXPECT_EQ(GetStr("k"), "v2");
}

TEST_F(KvStoreTest, LongKeysSharingPrefixStayDistinct) {
  // Keys identical in the first 24 bytes (the index prefix width).
  std::string base(30, 'x');
  std::string k1 = base + "-one";
  std::string k2 = base + "-two";
  ASSERT_TRUE(kv_->Put(k1, ByteView(std::string_view("first"))).ok());
  ASSERT_TRUE(kv_->Put(k2, ByteView(std::string_view("second"))).ok());
  EXPECT_EQ(GetStr(k1), "first");
  EXPECT_EQ(GetStr(k2), "second");
  ASSERT_TRUE(kv_->Delete(k1).ok());
  EXPECT_EQ(kv_->Get(k1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(GetStr(k2), "second");
}

TEST_F(KvStoreTest, ManyKeysMatchReference) {
  std::map<std::string, std::string> reference;
  Rng rng(3);
  for (int op = 0; op < 800; ++op) {
    std::string key = "key-" + std::to_string(rng.Uniform(100));
    if (rng.Bernoulli(0.2) && reference.count(key)) {
      ASSERT_TRUE(kv_->Delete(key).ok());
      reference.erase(key);
    } else {
      std::string value = "value-" + std::to_string(op);
      ASSERT_TRUE(kv_->Put(key, ByteView(std::string_view(value))).ok());
      reference[key] = value;
    }
  }
  for (int k = 0; k < 100; ++k) {
    std::string key = "key-" + std::to_string(k);
    auto it = reference.find(key);
    if (it == reference.end()) {
      EXPECT_EQ(kv_->Get(key).status().code(), StatusCode::kNotFound) << key;
    } else {
      EXPECT_EQ(GetStr(key), it->second) << key;
    }
  }
}

TEST_F(KvStoreTest, BinaryValues) {
  Bytes blob = {0x00, 0xFF, 0x7F, 0x80, 0x01};
  ASSERT_TRUE(kv_->Put("blob", ByteView(blob)).ok());
  auto v = kv_->Get("blob");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, blob);
}

TEST_F(KvStoreTest, EmptyValue) {
  ASSERT_TRUE(kv_->Put("empty", ByteView()).ok());
  auto v = kv_->Get("empty");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
}

class TimeSeriesTest : public ::testing::Test {
 protected:
  TimeSeriesTest()
      : chip_(TestGeometry()), alloc_(&chip_), gauge_(64 * 1024) {
    auto data = alloc_.Allocate(128);
    auto summary = alloc_.Allocate(16);
    ts_ = std::make_unique<TimeSeriesStore>(*data, *summary, &gauge_);
    EXPECT_TRUE(ts_->Init().ok());
  }

  flash::FlashChip chip_;
  flash::PartitionAllocator alloc_;
  mcu::RamGauge gauge_;
  std::unique_ptr<TimeSeriesStore> ts_;
};

TEST_F(TimeSeriesTest, AppendAndRangeSmall) {
  for (uint64_t t = 10; t <= 50; t += 10) {
    ASSERT_TRUE(ts_->Append(t, static_cast<double>(t) * 1.5).ok());
  }
  std::vector<uint64_t> seen;
  TimeSeriesStore::QueryStats stats;
  ASSERT_TRUE(ts_->Range(20, 40,
                         [&](const TimeSeriesStore::Point& p) {
                           seen.push_back(p.timestamp);
                           return Status::Ok();
                         },
                         &stats)
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{20, 30, 40}));
}

TEST_F(TimeSeriesTest, RejectsNonIncreasingTimestamps) {
  ASSERT_TRUE(ts_->Append(100, 1.0).ok());
  EXPECT_EQ(ts_->Append(100, 2.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ts_->Append(99, 2.0).code(), StatusCode::kInvalidArgument);
}

TEST_F(TimeSeriesTest, AggregateMatchesReference) {
  Rng rng(5);
  std::vector<std::pair<uint64_t, double>> points;
  uint64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += 1 + rng.Uniform(5);
    double v = static_cast<double>(rng.Uniform(1000)) / 10.0;
    points.emplace_back(t, v);
    ASSERT_TRUE(ts_->Append(t, v).ok());
  }

  for (auto [lo, hi] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, t}, {t / 4, t / 2}, {100, 200}, {t, t + 100}, {0, 0}}) {
    TimeSeriesStore::QueryStats stats;
    auto agg = ts_->Aggregate(lo, hi, &stats);
    ASSERT_TRUE(agg.ok());

    uint64_t count = 0;
    double sum = 0, mn = 0, mx = 0;
    bool first = true;
    for (auto& [pt, pv] : points) {
      if (pt < lo || pt > hi) continue;
      if (first) {
        mn = mx = pv;
        first = false;
      }
      mn = std::min(mn, pv);
      mx = std::max(mx, pv);
      sum += pv;
      ++count;
    }
    EXPECT_EQ(agg->count, count) << lo << ".." << hi;
    EXPECT_NEAR(agg->sum, sum, 1e-6);
    if (count > 0) {
      EXPECT_DOUBLE_EQ(agg->min, mn);
      EXPECT_DOUBLE_EQ(agg->max, mx);
      EXPECT_NEAR(agg->avg(), sum / static_cast<double>(count), 1e-9);
    }
  }
}

TEST_F(TimeSeriesTest, SummariesSkipPages) {
  uint64_t t = 0;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    t += 1;
    ASSERT_TRUE(ts_->Append(t, static_cast<double>(rng.Uniform(100))).ok());
  }
  // A narrow range touches few data pages.
  chip_.ResetStats();
  TimeSeriesStore::QueryStats stats;
  uint64_t count = 0;
  ASSERT_TRUE(ts_->Range(5000, 5050,
                         [&](const TimeSeriesStore::Point&) {
                           ++count;
                           return Status::Ok();
                         },
                         &stats)
                  .ok());
  EXPECT_EQ(count, 51u);
  EXPECT_LE(stats.data_pages, 4u);
  EXPECT_GT(stats.pages_skipped, 100u);
  EXPECT_LT(chip_.stats().page_reads,
            static_cast<uint64_t>(ts_->num_data_pages()) / 4);
}

TEST_F(TimeSeriesTest, AggregateMostlyUsesSummaries) {
  uint64_t t = 0;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ts_->Append(++t, 1.0).ok());
  }
  TimeSeriesStore::QueryStats stats;
  auto agg = ts_->Aggregate(100, 9900, &stats);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 9801u);
  // Only the two partial edge pages are fetched.
  EXPECT_LE(stats.data_pages, 2u);
}

TEST_F(TimeSeriesTest, EmptyRange) {
  ASSERT_TRUE(ts_->Append(10, 1.0).ok());
  auto agg = ts_->Aggregate(20, 30, nullptr);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 0u);
  EXPECT_FALSE(ts_->Aggregate(30, 20, nullptr).ok());  // t1 > t2
}

TEST_F(TimeSeriesTest, RamReleasedOnDestruction) {
  size_t in_use = gauge_.in_use();
  EXPECT_GT(in_use, 0u);
  ts_.reset();
  EXPECT_EQ(gauge_.in_use(), 0u);
}

}  // namespace
}  // namespace pds::embdb

namespace pds::mcu {
namespace {

TEST(CalibrationTest, SearchQueryFormula) {
  // 5 keywords on 2 KB pages, top-10, 64 buckets, 2 KB buffer:
  // 5*2048 + 160 + 256 + 2048 = 12704.
  EXPECT_EQ(SearchQueryRam(5, 2048, 10, 64, 2048), 12704u);
}

TEST(CalibrationTest, SortRamSquareRootLaw) {
  // Doubling data multiplies the single-pass RAM by sqrt(2).
  size_t r1 = SinglePassSortRam(1 << 20, 32, 2048);
  size_t r2 = SinglePassSortRam(1 << 21, 32, 2048);
  EXPECT_NEAR(static_cast<double>(r2) / static_cast<double>(r1),
              std::sqrt(2.0), 0.01);
}

TEST(CalibrationTest, SortRamFloor) {
  EXPECT_GE(SinglePassSortRam(1, 32, 2048), 2 * 2048u);
}

TEST(CalibrationTest, SpjAndAggregation) {
  EXPECT_EQ(SpjQueryRam({100, 200}, 512), 300 * 8 + 512u);
  EXPECT_EQ(AggregationRam(100), 8000u);
}

TEST(CalibrationTest, ReportCoversAllTreatments) {
  WorkloadProfile profile;
  auto report = CalibrateRam(profile);
  ASSERT_EQ(report.size(), 5u);
  for (const auto& r : report) {
    EXPECT_GT(r.bytes, 0u) << r.treatment;
    EXPECT_FALSE(r.formula.empty());
  }
}

TEST(CalibrationTest, RecommendationDominatesEveryTreatment) {
  WorkloadProfile profile;
  size_t budget = RecommendedRamBudget(profile);
  EXPECT_EQ(budget % 1024, 0u);
  for (const auto& r : CalibrateRam(profile)) {
    EXPECT_GE(budget, r.bytes) << r.treatment;
  }
}

TEST(CalibrationTest, BiggerWorkloadNeedsMoreRam) {
  WorkloadProfile small;
  small.largest_index_entries = 1 << 14;
  WorkloadProfile big;
  big.largest_index_entries = 1 << 24;
  EXPECT_LT(RecommendedRamBudget(small), RecommendedRamBudget(big));
}

// The calibration must be *sufficient*: a sort sized by the formula really
// completes in a single merge pass (no intermediate runs written beyond
// the initial spill).
TEST(CalibrationTest, SortCalibrationIsSufficient) {
  const uint64_t n = 20000;
  const size_t record_size = 32;
  pds::flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 2048;
  pds::flash::FlashChip chip(g);
  pds::flash::PartitionAllocator alloc(&chip);
  size_t ram = SinglePassSortRam(n, record_size, g.page_size);
  RamGauge gauge(ram + 4 * g.page_size);  // formula + merge output page

  logstore::ExternalSorter::Options opts;
  opts.record_size = record_size;
  opts.ram_budget_bytes = ram;
  logstore::ExternalSorter sorter(&alloc, opts, &gauge);
  Rng rng(11);
  uint8_t rec[32] = {0};
  for (uint64_t i = 0; i < n; ++i) {
    EncodeU64BE(rec, rng.Next());
    ASSERT_TRUE(sorter.Add(ByteView(rec, 32)).ok());
  }
  uint64_t emitted = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](ByteView) {
                    ++emitted;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(emitted, n);
}

}  // namespace
}  // namespace pds::mcu

namespace pds::embdb {
namespace {

flash::Geometry CompactGeometry() {
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 1024;
  return g;
}

TEST(KvCompactionTest, CompactKeepsLiveStateAndFreesBlocks) {
  flash::FlashChip chip(CompactGeometry());
  flash::PartitionAllocator alloc(&chip);
  mcu::RamGauge gauge(64 * 1024);
  auto values = alloc.Allocate(64);
  auto keys = alloc.Allocate(64);
  auto bloom = alloc.Allocate(16);
  KvStore kv(*values, *keys, *bloom, &gauge, {});
  ASSERT_TRUE(kv.Init().ok());

  // Heavy churn: 100 keys, many versions, some deleted.
  Rng rng(8);
  std::map<std::string, std::string> reference;
  for (int op = 0; op < 600; ++op) {
    std::string key = "k" + std::to_string(rng.Uniform(100));
    if (rng.Bernoulli(0.25) && reference.count(key)) {
      ASSERT_TRUE(kv.Delete(key).ok());
      reference.erase(key);
    } else {
      std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(kv.Put(key, ByteView(std::string_view(value))).ok());
      reference[key] = value;
    }
  }
  uint64_t versions_before = kv.num_versions();
  uint32_t used_before = alloc.blocks_used();

  ASSERT_TRUE(kv.Compact(&alloc).ok());

  // The log shrank to the live set and blocks were returned.
  EXPECT_EQ(kv.num_versions(), reference.size());
  EXPECT_LT(kv.num_versions(), versions_before);
  EXPECT_LE(alloc.blocks_used(), used_before);

  // Every key still answers exactly as before.
  for (int k = 0; k < 100; ++k) {
    std::string key = "k" + std::to_string(k);
    auto it = reference.find(key);
    auto got = kv.Get(key);
    if (it == reference.end()) {
      EXPECT_EQ(got.status().code(), StatusCode::kNotFound) << key;
    } else {
      ASSERT_TRUE(got.ok()) << key;
      EXPECT_EQ(ByteView(*got).ToString(), it->second) << key;
    }
  }

  // The store stays writable after the swap.
  ASSERT_TRUE(kv.Put("post-compact", ByteView(std::string_view("x"))).ok());
  auto post = kv.Get("post-compact");
  ASSERT_TRUE(post.ok());
}

TEST(KvCompactionTest, CompactedBlocksAreReusable) {
  flash::FlashChip chip(CompactGeometry());
  flash::PartitionAllocator alloc(&chip);
  mcu::RamGauge gauge(64 * 1024);
  auto values = alloc.Allocate(32);
  auto keys = alloc.Allocate(32);
  auto bloom = alloc.Allocate(8);
  KvStore kv(*values, *keys, *bloom, &gauge, {});
  ASSERT_TRUE(kv.Init().ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(kv.Put("key" + std::to_string(i % 20),
                       ByteView(std::string_view("payload"))).ok());
  }
  uint32_t free_before = alloc.blocks_free();
  ASSERT_TRUE(kv.Compact(&alloc).ok());
  EXPECT_GE(alloc.blocks_free(), free_before);
  // A new allocation can be served from the reclaimed space.
  auto reused = alloc.Allocate(16);
  ASSERT_TRUE(reused.ok());
  pds::Bytes probe(16, 0x5A);
  EXPECT_TRUE(reused->ProgramPage(0, ByteView(probe)).ok());
}

TEST(AllocatorFreeTest, FreeListReuse) {
  flash::FlashChip chip(CompactGeometry());
  flash::PartitionAllocator alloc(&chip);
  auto a = alloc.Allocate(10);
  auto b = alloc.Allocate(10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  uint32_t used = alloc.blocks_used();
  ASSERT_TRUE(alloc.Free(*a).ok());
  EXPECT_EQ(alloc.blocks_used(), used - 10);

  // A smaller allocation is carved from the freed range (split).
  auto c = alloc.Allocate(4);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->first_block(), a->first_block());
  auto d = alloc.Allocate(6);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->first_block(), a->first_block() + 4);

  // Freed blocks come back erased and writable.
  pds::Bytes data(8, 1);
  EXPECT_TRUE(c->ProgramPage(0, ByteView(data)).ok());
}

TEST(AllocatorFreeTest, FreeRejectsForeignPartition) {
  flash::FlashChip chip1(CompactGeometry());
  flash::FlashChip chip2(CompactGeometry());
  flash::PartitionAllocator alloc1(&chip1);
  flash::PartitionAllocator alloc2(&chip2);
  auto p = alloc2.Allocate(4);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(alloc1.Free(*p).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(alloc1.Free(flash::Partition()).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pds::embdb
