// Tests for the two Database extensions: tombstone deletes (the owner's
// "right to be forgotten") and SQL aggregates (COUNT/SUM/AVG/MIN/MAX with
// GROUP BY).

#include <gtest/gtest.h>

#include <map>

#include "embdb/database.h"
#include "embdb/query_parser.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {
namespace {

flash::Geometry TestGeometry() {
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 1024;
  return g;
}

Schema BillsSchema() {
  return Schema("bills", {{"id", ColumnType::kUint64, ""},
                          {"city", ColumnType::kString, ""},
                          {"amount", ColumnType::kDouble, ""}});
}

class DeleteTest : public ::testing::Test {
 protected:
  DeleteTest() : chip_(TestGeometry()), gauge_(128 * 1024),
                 db_(&chip_, &gauge_) {
    EXPECT_TRUE(db_.CreateTable(BillsSchema(), {}).ok());
    EXPECT_TRUE(db_.CreateKeyIndex("bills", "city", {}).ok());
    const char* cities[] = {"lyon", "paris"};
    for (uint64_t i = 0; i < 60; ++i) {
      Tuple t = {Value::U64(i), Value::Str(cities[i % 2]),
                 Value::F64(static_cast<double>(i))};
      EXPECT_TRUE(db_.Insert("bills", t).ok());
    }
  }

  flash::FlashChip chip_;
  mcu::RamGauge gauge_;
  Database db_;
};

TEST_F(DeleteTest, DeletedRowVanishesFromGet) {
  TableHeap* heap = db_.table("bills");
  ASSERT_TRUE(heap->Get(10).ok());
  ASSERT_TRUE(db_.Delete("bills", 10).ok());
  EXPECT_EQ(heap->Get(10).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(heap->IsDeleted(10));
  EXPECT_EQ(heap->num_live_rows(), 59u);
  EXPECT_EQ(heap->num_rows(), 60u);  // rowids stay dense
}

TEST_F(DeleteTest, DeleteIsIdempotent) {
  ASSERT_TRUE(db_.Delete("bills", 5).ok());
  ASSERT_TRUE(db_.Delete("bills", 5).ok());
  EXPECT_EQ(db_.table("bills")->num_deleted(), 1u);
}

TEST_F(DeleteTest, DeleteBadRowidFails) {
  EXPECT_EQ(db_.Delete("bills", 999).code(), StatusCode::kNotFound);
  EXPECT_EQ(db_.Delete("ghost", 0).code(), StatusCode::kNotFound);
}

TEST_F(DeleteTest, ScansSkipDeletedRows) {
  ASSERT_TRUE(db_.Delete("bills", 0).ok());
  ASSERT_TRUE(db_.Delete("bills", 30).ok());
  ASSERT_TRUE(db_.Delete("bills", 59).ok());
  int count = 0;
  ASSERT_TRUE(db_.SelectScan("bills", {},
                             [&](uint64_t rowid, const Tuple&) {
                               EXPECT_NE(rowid, 0u);
                               EXPECT_NE(rowid, 30u);
                               EXPECT_NE(rowid, 59u);
                               ++count;
                               return Status::Ok();
                             })
                  .ok());
  EXPECT_EQ(count, 57);
}

TEST_F(DeleteTest, IndexLookupsSkipDeletedRows) {
  // Index entries are immutable logs: stale rowids must be filtered.
  ASSERT_TRUE(db_.Delete("bills", 2).ok());   // a lyon row
  std::set<uint64_t> rowids;
  ASSERT_TRUE(db_.SelectViaIndex("bills", "city", Value::Str("lyon"),
                                 [&](uint64_t rowid, const Tuple&) {
                                   rowids.insert(rowid);
                                   return Status::Ok();
                                 })
                  .ok());
  EXPECT_EQ(rowids.size(), 29u);
  EXPECT_EQ(rowids.count(2), 0u);
}

TEST_F(DeleteTest, SqlSeesPostDeleteState) {
  for (uint64_t r = 0; r < 10; ++r) {
    ASSERT_TRUE(db_.Delete("bills", r).ok());
  }
  int count = 0;
  ASSERT_TRUE(db_.Query("SELECT * FROM bills",
                        [&](const Tuple&) {
                          ++count;
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(count, 50);
}

class SqlAggregateTest : public DeleteTest {};

TEST_F(SqlAggregateTest, CountStar) {
  double result = -1;
  ASSERT_TRUE(db_.Query("SELECT COUNT(*) FROM bills",
                        [&](const Tuple& t) {
                          EXPECT_EQ(t.size(), 1u);
                          result = t[0].AsF64();
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_DOUBLE_EQ(result, 60.0);
}

TEST_F(SqlAggregateTest, SumAvgMinMax) {
  // amounts are 0..59; lyon rows are the even ids.
  std::map<std::string, double> expect = {
      {"SELECT SUM(amount) FROM bills WHERE city = 'lyon'", 870.0},
      {"SELECT AVG(amount) FROM bills WHERE city = 'lyon'", 29.0},
      {"SELECT MIN(amount) FROM bills WHERE city = 'paris'", 1.0},
      {"SELECT MAX(amount) FROM bills WHERE city = 'paris'", 59.0},
  };
  for (auto& [sql, want] : expect) {
    double got = -12345;
    ASSERT_TRUE(db_.Query(sql,
                          [&](const Tuple& t) {
                            got = t.back().AsF64();
                            return Status::Ok();
                          })
                    .ok())
        << sql;
    EXPECT_DOUBLE_EQ(got, want) << sql;
  }
}

TEST_F(SqlAggregateTest, GroupBy) {
  std::map<std::string, double> sums;
  ASSERT_TRUE(db_.Query(
                    "SELECT city, SUM(amount) FROM bills GROUP BY city",
                    [&](const Tuple& t) {
                      EXPECT_EQ(t.size(), 2u);
                      sums[t[0].AsStr()] = t[1].AsF64();
                      return Status::Ok();
                    })
                  .ok());
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums["lyon"], 870.0);   // 0+2+...+58
  EXPECT_DOUBLE_EQ(sums["paris"], 900.0);  // 1+3+...+59
}

TEST_F(SqlAggregateTest, GroupByWithWhere) {
  std::map<std::string, double> counts;
  ASSERT_TRUE(db_.Query("SELECT city, COUNT(*) FROM bills WHERE "
                        "amount >= 50.0 GROUP BY city",
                        [&](const Tuple& t) {
                          counts[t[0].AsStr()] = t[1].AsF64();
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_DOUBLE_EQ(counts["lyon"], 5.0);   // 50,52,54,56,58
  EXPECT_DOUBLE_EQ(counts["paris"], 5.0);  // 51,53,55,57,59
}

TEST_F(SqlAggregateTest, AggregateRespectsDeletes) {
  ASSERT_TRUE(db_.Delete("bills", 58).ok());  // lyon's max amount
  double max = -1;
  ASSERT_TRUE(db_.Query("SELECT MAX(amount) FROM bills WHERE city = 'lyon'",
                        [&](const Tuple& t) {
                          max = t[0].AsF64();
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_DOUBLE_EQ(max, 56.0);
}

TEST_F(SqlAggregateTest, ParserRejectsMalformedAggregates) {
  auto noop = [](const Tuple&) { return Status::Ok(); };
  EXPECT_FALSE(db_.Query("SELECT SUM(*) FROM bills", noop).ok());
  EXPECT_FALSE(db_.Query("SELECT SUM(amount FROM bills", noop).ok());
  EXPECT_FALSE(db_.Query("SELECT city, amount, SUM(amount) FROM bills "
                         "GROUP BY city",
                         noop)
                   .ok());
  EXPECT_FALSE(db_.Query("SELECT amount, SUM(amount) FROM bills "
                         "GROUP BY city",
                         noop)
                   .ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM bills GROUP BY city", noop).ok());
  EXPECT_FALSE(db_.Query("SELECT SUM(city) FROM bills", noop).ok());
  EXPECT_FALSE(db_.Query("SELECT SUM(ghost) FROM bills", noop).ok());
  EXPECT_FALSE(
      db_.Query("SELECT COUNT(*) FROM bills GROUP BY ghost", noop).ok());
}

TEST_F(SqlAggregateTest, AggKeywordAsColumnNameStillWorks) {
  // "count", "sum" etc. remain usable as plain identifiers.
  Schema s("odd", {{"count", ColumnType::kUint64, ""}});
  ASSERT_TRUE(db_.CreateTable(s, {}).ok());
  ASSERT_TRUE(db_.Insert("odd", {Value::U64(9)}).ok());
  uint64_t got = 0;
  ASSERT_TRUE(db_.Query("SELECT count FROM odd",
                        [&](const Tuple& t) {
                          got = t[0].AsU64();
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(got, 9u);
}

}  // namespace
}  // namespace pds::embdb
