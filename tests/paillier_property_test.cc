// Property suite for the kernel-accelerated Paillier implementation: the
// CRT decryption and fixed-base encryption paths must agree with the
// schoolbook Scalar paths on every input, and the homomorphic laws must
// hold across key sizes. Complements paillier_test.cc (functional basics).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/paillier.h"

namespace pds::crypto {
namespace {

/// Checks every cross-path agreement property for one keypair.
void CheckKernelAgreesWithScalar(const Paillier& paillier, Rng* rng,
                                 int messages) {
  const BigInt& n = paillier.public_key().n;
  for (int i = 0; i < messages; ++i) {
    BigInt m = BigInt::RandomBelow(n, rng);
    auto cached = paillier.Encrypt(m, rng);
    auto scalar = paillier.EncryptScalar(m, rng);
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(scalar.ok());
    // Both encryption paths produce valid ciphertexts, and both decryption
    // paths (CRT and schoolbook) recover the plaintext from either.
    for (const BigInt& ct : {*cached, *scalar}) {
      auto crt = paillier.Decrypt(ct);
      auto school = paillier.DecryptScalar(ct);
      ASSERT_TRUE(crt.ok());
      ASSERT_TRUE(school.ok());
      EXPECT_EQ(*crt, m) << "CRT decrypt, m=" << m.ToDecimalString();
      EXPECT_EQ(*crt, *school)
          << "CRT vs schoolbook, m=" << m.ToDecimalString();
    }
  }
}

TEST(PaillierPropertyTest, KernelAgreesWithScalar256) {
  Rng rng(1);
  auto paillier = Paillier::Generate(256, &rng);
  ASSERT_TRUE(paillier.ok());
  CheckKernelAgreesWithScalar(*paillier, &rng, 12);
}

TEST(PaillierPropertyTest, KernelAgreesWithScalar512) {
  Rng rng(2);
  auto paillier = Paillier::Generate(512, &rng);
  ASSERT_TRUE(paillier.ok());
  CheckKernelAgreesWithScalar(*paillier, &rng, 6);
}

TEST(PaillierPropertyTest, KernelAgreesWithScalar1024) {
  Rng rng(3);
  auto paillier = Paillier::Generate(1024, &rng);
  ASSERT_TRUE(paillier.ok());
  CheckKernelAgreesWithScalar(*paillier, &rng, 3);
}

TEST(PaillierPropertyTest, HomomorphicAdditionLaw) {
  Rng rng(4);
  auto paillier = Paillier::Generate(256, &rng);
  ASSERT_TRUE(paillier.ok());
  const BigInt& n = paillier->public_key().n;
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBelow(n, &rng);
    BigInt b = BigInt::RandomBelow(n, &rng);
    auto ca = paillier->Encrypt(a, &rng);
    auto cb = paillier->Encrypt(b, &rng);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    auto sum = paillier->Decrypt(paillier->AddCiphertexts(*ca, *cb));
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(*sum, BigInt::ModAdd(a, b, n));
  }
}

TEST(PaillierPropertyTest, HomomorphicScalarMultiplyLaw) {
  Rng rng(5);
  auto paillier = Paillier::Generate(256, &rng);
  ASSERT_TRUE(paillier.ok());
  const BigInt& n = paillier->public_key().n;
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBelow(n, &rng);
    BigInt k(rng.Next());
    auto ca = paillier->Encrypt(a, &rng);
    ASSERT_TRUE(ca.ok());
    auto prod = paillier->Decrypt(paillier->MulPlaintext(*ca, k));
    ASSERT_TRUE(prod.ok());
    EXPECT_EQ(*prod, BigInt::ModMul(a, k, n));
    auto shifted = paillier->Decrypt(paillier->AddPlaintext(*ca, k));
    ASSERT_TRUE(shifted.ok());
    EXPECT_EQ(*shifted, BigInt::ModAdd(a, k, n));
  }
}

TEST(PaillierPropertyTest, CiphertextsAreNonDeterministic) {
  Rng rng(6);
  auto paillier = Paillier::Generate(256, &rng);
  ASSERT_TRUE(paillier.ok());
  auto c1 = paillier->EncryptU64(42, &rng);
  auto c2 = paillier->EncryptU64(42, &rng);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_FALSE(*c1 == *c2);
}

TEST(PaillierPropertyTest, GenerateFromPrimesAcceptsValidPrimes) {
  Rng rng(7);
  BigInt p = BigInt::GeneratePrime(128, &rng);
  BigInt q = BigInt::GeneratePrime(128, &rng);
  ASSERT_FALSE(p == q);
  auto paillier = Paillier::GenerateFromPrimes(p, q, &rng);
  ASSERT_TRUE(paillier.ok()) << paillier.status().ToString();
  CheckKernelAgreesWithScalar(*paillier, &rng, 4);
}

TEST(PaillierPropertyTest, GenerateFromPrimesRejectsEqualPrimes) {
  Rng rng(8);
  BigInt p = BigInt::GeneratePrime(128, &rng);
  auto result = Paillier::GenerateFromPrimes(p, p, &rng);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PaillierPropertyTest, GenerateFromPrimesRejectsDegeneratePrimes) {
  Rng rng(9);
  BigInt p = BigInt::GeneratePrime(128, &rng);
  // 0 and 1 are not usable factors.
  EXPECT_EQ(Paillier::GenerateFromPrimes(BigInt::Zero(), p, &rng)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      Paillier::GenerateFromPrimes(p, BigInt::One(), &rng).status().code(),
      StatusCode::kInvalidArgument);
  // 2 is prime but even, which the Montgomery kernel cannot serve.
  EXPECT_EQ(
      Paillier::GenerateFromPrimes(BigInt(2), p, &rng).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(PaillierPropertyTest, GenerateFromPrimesRejectsGcdCollision) {
  // p = 3, q = 7: gcd(pq, (p-1)(q-1)) = gcd(21, 12) = 3 != 1, so L is not
  // well-defined and the pair must be rejected despite both being prime.
  Rng rng(10);
  auto result = Paillier::GenerateFromPrimes(BigInt(3), BigInt(7), &rng);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PaillierPropertyTest, RejectsOutOfRangeInputs) {
  Rng rng(11);
  auto paillier = Paillier::Generate(128, &rng);
  ASSERT_TRUE(paillier.ok());
  const BigInt& n = paillier->public_key().n;
  const BigInt& n2 = paillier->public_key().n_squared;
  EXPECT_EQ(paillier->Encrypt(n, &rng).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(paillier->EncryptScalar(n, &rng).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(paillier->Decrypt(BigInt::Zero()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(paillier->Decrypt(n2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(paillier->DecryptScalar(BigInt::Zero()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pds::crypto
