// Property tests for the [TNP14] aggregation protocol family: for every
// fleet shape (tokens x tuples x groups) and every protocol, the result
// must equal the plaintext aggregate for SUM, COUNT and AVG — and each
// protocol's leakage invariant must hold.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "global/agg_protocols.h"

namespace pds::global {
namespace {

enum class ProtocolKind { kSecureAgg, kWhiteNoise, kDomainNoise, kHistogram };

// (num_tokens, tuples_per_token, num_groups, protocol)
using ProtoParam = std::tuple<int, int, int, ProtocolKind>;

class ProtocolProperty : public ::testing::TestWithParam<ProtoParam> {
 protected:
  void BuildFleet(int num_tokens, int tuples, int groups) {
    crypto::SymmetricKey key = crypto::KeyFromString("prop-fleet");
    Rng rng(num_tokens * 1000 + tuples * 10 + groups);
    for (int i = 0; i < num_tokens; ++i) {
      mcu::SecureToken::Config cfg;
      cfg.token_id = static_cast<uint64_t>(i);
      cfg.fleet_key = key;
      tokens_.push_back(std::make_unique<mcu::SecureToken>(cfg));
      Participant p;
      p.token = tokens_.back().get();
      for (int t = 0; t < tuples; ++t) {
        p.tuples.push_back(
            {"g" + std::to_string(rng.Uniform(groups)),
             static_cast<double>(rng.Uniform(1000)) / 4.0});
      }
      participants_.push_back(std::move(p));
    }
  }

  std::unique_ptr<AggregationProtocol> MakeProtocol(ProtocolKind kind,
                                                    int groups) {
    switch (kind) {
      case ProtocolKind::kSecureAgg:
        return std::make_unique<SecureAggProtocol>(
            SecureAggProtocol::Config{/*partition_capacity=*/
                                      static_cast<size_t>(groups * 4 + 16)});
      case ProtocolKind::kWhiteNoise:
        return std::make_unique<WhiteNoiseProtocol>(
            WhiteNoiseProtocol::Config{0.5, 11});
      case ProtocolKind::kDomainNoise: {
        DomainNoiseProtocol::Config cfg;
        for (int g = 0; g < groups; ++g) {
          cfg.domain.push_back("g" + std::to_string(g));
        }
        cfg.fakes_per_value = 2;
        return std::make_unique<DomainNoiseProtocol>(std::move(cfg));
      }
      case ProtocolKind::kHistogram:
        return std::make_unique<HistogramProtocol>(
            HistogramProtocol::Config{5});
    }
    return nullptr;
  }

  std::vector<std::unique_ptr<mcu::SecureToken>> tokens_;
  std::vector<Participant> participants_;
};

TEST_P(ProtocolProperty, MatchesPlaintextForAllAggregates) {
  auto [num_tokens, tuples, groups, kind] = GetParam();
  BuildFleet(num_tokens, tuples, groups);
  auto protocol = MakeProtocol(kind, groups);

  for (AggFunc func : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg}) {
    auto expected = PlainAggregate(participants_, func);
    auto output = protocol->Execute(participants_, func);
    ASSERT_TRUE(output.ok()) << output.status().ToString();
    ASSERT_EQ(output->groups.size(), expected.size());
    for (auto& [group, value] : expected) {
      ASSERT_TRUE(output->groups.count(group)) << group;
      EXPECT_NEAR(output->groups[group], value, 1e-6) << group;
    }
  }
}

TEST_P(ProtocolProperty, LeakageInvariants) {
  auto [num_tokens, tuples, groups, kind] = GetParam();
  BuildFleet(num_tokens, tuples, groups);
  auto protocol = MakeProtocol(kind, groups);
  auto output = protocol->Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(output.ok());
  const LeakageReport& leak = output->leakage;

  // Universal: the SSI never sees plaintext group values.
  EXPECT_FALSE(leak.plaintext_groups_visible);

  uint64_t real_tuples = 0;
  std::set<std::string> real_groups;
  for (auto& p : participants_) {
    real_tuples += p.tuples.size();
    for (auto& t : p.tuples) {
      real_groups.insert(t.group);
    }
  }

  switch (kind) {
    case ProtocolKind::kSecureAgg:
      // Non-deterministic encryption: every observed tuple is distinct.
      EXPECT_EQ(leak.distinct_classes, leak.tuples_observed);
      break;
    case ProtocolKind::kWhiteNoise:
      // Real groups + fake singletons: at least every present real group
      // forms a class.
      EXPECT_GE(leak.distinct_classes, real_groups.size());
      EXPECT_GE(leak.tuples_observed, real_tuples);
      break;
    case ProtocolKind::kDomainNoise:
      // Exactly one class per domain value (every value got fakes).
      EXPECT_EQ(leak.distinct_classes, static_cast<uint64_t>(groups));
      EXPECT_GE(leak.tuples_observed, real_tuples);
      break;
    case ProtocolKind::kHistogram:
      // At most the configured bucket count.
      EXPECT_LE(leak.distinct_classes, 5u);
      EXPECT_EQ(leak.tuples_observed, real_tuples);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FleetShapes, ProtocolProperty,
    ::testing::Combine(
        ::testing::Values(1, 5, 25),      // tokens
        ::testing::Values(1, 8),          // tuples per token
        ::testing::Values(1, 4, 12),      // groups
        ::testing::Values(ProtocolKind::kSecureAgg,
                          ProtocolKind::kWhiteNoise,
                          ProtocolKind::kDomainNoise,
                          ProtocolKind::kHistogram)));

}  // namespace
}  // namespace pds::global
