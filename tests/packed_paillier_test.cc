#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "crypto/paillier.h"
#include "mcu/secure_token.h"

namespace pds::crypto {
namespace {

// ---------------------------------------------------------------------------
// SlotLayout sizing and guard-bit boundaries.
// ---------------------------------------------------------------------------

TEST(SlotLayoutTest, ForFleetSizesGuardBitsFromFleet) {
  auto layout = SlotLayout::ForFleet(/*fleet_size=*/64, /*max_value=*/255,
                                     /*num_counters=*/8,
                                     /*plaintext_bits=*/256);
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  EXPECT_EQ(layout->num_slots, 8u);
  // 255 needs 8 value bits; 64 participants need 7 guard bits.
  EXPECT_EQ(layout->guard_bits, 7u);
  EXPECT_EQ(layout->slot_bits, 15u);
  EXPECT_EQ(layout->max_slot_value, 255u);
  EXPECT_EQ(layout->max_addends(), 128u);
  EXPECT_GE(layout->max_addends(), 64u);
  EXPECT_LE(layout->total_bits(), 255u);
}

TEST(SlotLayoutTest, MaxFleetPerSlotWidthBoundary) {
  // With max_value = 1 (1 value bit) the slot width is 1 + guard_bits.
  // A fleet of exactly 2^g participants needs g+1 guard bits (bit_width),
  // while 2^g - 1 participants need only g: the boundary the guard math
  // must not get wrong, since fleet_size == max_addends is the largest
  // fleet a slot width can absorb without overflow.
  for (uint32_t g = 1; g <= 16; ++g) {
    const size_t pow2 = size_t{1} << g;
    auto at = SlotLayout::ForFleet(pow2, 1, 1, 256);
    ASSERT_TRUE(at.ok());
    EXPECT_EQ(at->guard_bits, g + 1) << "fleet=" << pow2;
    EXPECT_GE(at->max_addends(), pow2);
    auto below = SlotLayout::ForFleet(pow2 - 1, 1, 1, 256);
    ASSERT_TRUE(below.ok());
    EXPECT_EQ(below->guard_bits, g) << "fleet=" << pow2 - 1;
    EXPECT_GE(below->max_addends(), pow2 - 1);
  }
}

TEST(SlotLayoutTest, RejectsLayoutsThatCannotFit) {
  // Degenerate inputs.
  EXPECT_FALSE(SlotLayout::ForFleet(0, 10, 4, 256).ok());
  EXPECT_FALSE(SlotLayout::ForFleet(10, 10, 0, 256).ok());
  // Slot wider than 63 bits: 60 value bits + 7 guard bits.
  EXPECT_FALSE(
      SlotLayout::ForFleet(64, (uint64_t{1} << 60) - 1, 1, 4096).ok());
  // Total width must stay strictly below plaintext_bits. 16 slots of
  // 15 bits = 240 <= 255 fits in 256-bit n; 17 slots = 255 still fits;
  // 18 slots = 270 must be rejected.
  EXPECT_TRUE(SlotLayout::ForFleet(64, 255, 17, 256).ok());
  EXPECT_FALSE(SlotLayout::ForFleet(64, 255, 18, 256).ok());
}

TEST(SlotLayoutTest, ZeroMaxValueStillGetsOneValueBit) {
  auto layout = SlotLayout::ForFleet(3, 0, 2, 256);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->slot_bits, 1u + 2u);  // 1 value bit + bit_width(3)=2
}

// ---------------------------------------------------------------------------
// Pack / unpack round trips.
// ---------------------------------------------------------------------------

TEST(PackSlotsTest, PackUnpackRoundTrip) {
  auto layout = SlotLayout::ForFleet(64, 255, 8, 256);
  ASSERT_TRUE(layout.ok());
  std::vector<uint64_t> values = {0, 1, 255, 17, 0, 254, 3, 128};
  auto packed = PackSlots(*layout, values);
  ASSERT_TRUE(packed.ok());
  auto unpacked = UnpackSlots(*layout, *packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, values);
}

TEST(PackSlotsTest, RejectsWrongArityAndOversizeValues) {
  auto layout = SlotLayout::ForFleet(64, 255, 8, 256);
  ASSERT_TRUE(layout.ok());
  EXPECT_FALSE(PackSlots(*layout, std::vector<uint64_t>(7, 0)).ok());
  EXPECT_FALSE(PackSlots(*layout, std::vector<uint64_t>(9, 0)).ok());
  std::vector<uint64_t> oversize(8, 0);
  oversize[3] = 256;  // max_slot_value is 255
  EXPECT_FALSE(PackSlots(*layout, oversize).ok());
}

TEST(UnpackSlotsTest, RejectsValueWiderThanLayout) {
  auto layout = SlotLayout::ForFleet(64, 255, 8, 256);
  ASSERT_TRUE(layout.ok());
  BigInt too_wide = BigInt::ShiftLeft(BigInt::One(), layout->total_bits());
  EXPECT_FALSE(UnpackSlots(*layout, too_wide).ok());
}

TEST(PackSlotsTest, PropertyRandomRoundTripAcrossLayouts) {
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t fleet = 1 + rng.Next() % 512;
    const uint64_t max_value = rng.Next() % (uint64_t{1} << 20);
    const size_t counters = 1 + rng.Next() % 12;
    auto layout = SlotLayout::ForFleet(fleet, max_value, counters, 1024);
    ASSERT_TRUE(layout.ok()) << layout.status().ToString();
    std::vector<uint64_t> values(counters);
    for (auto& v : values) {
      v = max_value == 0 ? 0 : rng.Next() % (max_value + 1);
    }
    auto packed = PackSlots(*layout, values);
    ASSERT_TRUE(packed.ok());
    auto unpacked = UnpackSlots(*layout, *packed);
    ASSERT_TRUE(unpacked.ok());
    EXPECT_EQ(*unpacked, values);
  }
}

// ---------------------------------------------------------------------------
// PackedAggregate: encrypt / fold / decrypt-unpack over a real keypair.
// ---------------------------------------------------------------------------

class PackedAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(42);
    auto ph = Paillier::Generate(256, rng_.get());
    ASSERT_TRUE(ph.ok()) << ph.status().ToString();
    paillier_ = std::make_unique<Paillier>(std::move(ph).value());
  }

  std::unique_ptr<Rng> rng_;
  std::unique_ptr<Paillier> paillier_;
};

TEST_F(PackedAggregateTest, EncryptDecryptUnpackRoundTrip) {
  auto agg = PackedAggregate::Create(*paillier_, /*fleet_size=*/64,
                                     /*max_value=*/255, /*num_counters=*/8);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  std::vector<uint64_t> values = {9, 0, 255, 1, 77, 200, 3, 128};
  auto ct = agg->EncryptPacked(values, rng_.get());
  ASSERT_TRUE(ct.ok());
  auto back = agg->DecryptUnpack(*ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, values);
}

TEST_F(PackedAggregateTest, HomomorphicSlotwiseSumAcrossFleet) {
  constexpr size_t kFleet = 64;
  constexpr size_t kCounters = 8;
  constexpr uint64_t kMaxValue = 255;
  auto agg = PackedAggregate::Create(*paillier_, kFleet, kMaxValue, kCounters);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->CheckAddBudget(kFleet).ok());

  std::vector<uint64_t> expected(kCounters, 0);
  BigInt sum_ct;
  Rng data_rng(7);
  for (size_t t = 0; t < kFleet; ++t) {
    std::vector<uint64_t> values(kCounters);
    for (size_t j = 0; j < kCounters; ++j) {
      values[j] = data_rng.Next() % (kMaxValue + 1);
      expected[j] += values[j];
    }
    auto ct = agg->EncryptPacked(values, rng_.get());
    ASSERT_TRUE(ct.ok());
    sum_ct = t == 0 ? *ct : agg->Add(sum_ct, *ct);
  }
  auto totals = agg->DecryptUnpack(sum_ct);
  ASSERT_TRUE(totals.ok()) << totals.status().ToString();
  EXPECT_EQ(*totals, expected);
}

TEST_F(PackedAggregateTest, GuardBitsAbsorbWorstCaseFleetSum) {
  // Every participant contributes max_value to every slot: the largest sum
  // the guard bits must absorb without carrying into the next slot.
  constexpr size_t kFleet = 16;
  constexpr uint64_t kMaxValue = 7;
  auto agg = PackedAggregate::Create(*paillier_, kFleet, kMaxValue, 4);
  ASSERT_TRUE(agg.ok());
  BigInt sum_ct;
  std::vector<uint64_t> all_max(4, kMaxValue);
  for (size_t t = 0; t < kFleet; ++t) {
    auto ct = agg->EncryptPacked(all_max, rng_.get());
    ASSERT_TRUE(ct.ok());
    sum_ct = t == 0 ? *ct : agg->Add(sum_ct, *ct);
  }
  auto totals = agg->DecryptUnpack(sum_ct);
  ASSERT_TRUE(totals.ok());
  EXPECT_EQ(*totals, std::vector<uint64_t>(4, kFleet * kMaxValue));
}

TEST_F(PackedAggregateTest, CheckAddBudgetEnforcesGuardCapacity) {
  auto agg = PackedAggregate::Create(*paillier_, 64, 255, 8);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->layout().max_addends(), 128u);
  EXPECT_TRUE(agg->CheckAddBudget(64).ok());
  EXPECT_TRUE(agg->CheckAddBudget(128).ok());
  EXPECT_FALSE(agg->CheckAddBudget(129).ok());
}

TEST_F(PackedAggregateTest, BatchEncryptMatchesSerialBitForBit) {
  auto agg = PackedAggregate::Create(*paillier_, 64, 255, 8);
  ASSERT_TRUE(agg.ok());
  // Odd row count exercises the partial final quad of the batch ladder.
  std::vector<std::vector<uint64_t>> rows;
  Rng data_rng(11);
  for (size_t t = 0; t < 7; ++t) {
    std::vector<uint64_t> values(8);
    for (auto& v : values) v = data_rng.Next() % 256;
    rows.push_back(values);
  }
  Rng rng_batch(99), rng_serial(99);
  auto batch = agg->EncryptPackedBatch(rows, &rng_batch);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    auto serial = agg->EncryptPacked(rows[i], &rng_serial);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ((*batch)[i], *serial) << "row " << i;
  }
}

TEST_F(PackedAggregateTest, DecryptBatchMatchesSerialDecrypt) {
  std::vector<BigInt> cts, ms;
  for (uint64_t m : {0ULL, 1ULL, 42ULL, 1000000ULL, 0xFFFFFFFFULL}) {
    auto ct = paillier_->EncryptU64(m, rng_.get());
    ASSERT_TRUE(ct.ok());
    cts.push_back(*ct);
    ms.push_back(BigInt(m));
  }
  auto batch = paillier_->DecryptBatch(cts);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), cts.size());
  for (size_t i = 0; i < cts.size(); ++i) {
    auto serial = paillier_->Decrypt(cts[i]);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ((*batch)[i], *serial);
    EXPECT_EQ((*batch)[i], ms[i]);
  }
}

TEST_F(PackedAggregateTest, PropertyFleetSumsAcrossSlotWidths) {
  // Randomized fleets at several slot widths: decrypt-unpack of the
  // homomorphic sum must equal the plaintext slot-wise sums.
  Rng data_rng(5);
  for (uint64_t max_value : {1ULL, 15ULL, 4095ULL}) {
    const size_t fleet = 1 + data_rng.Next() % 24;
    const size_t counters = 1 + data_rng.Next() % 6;
    auto agg = PackedAggregate::Create(*paillier_, fleet, max_value, counters);
    ASSERT_TRUE(agg.ok()) << agg.status().ToString();
    std::vector<uint64_t> expected(counters, 0);
    BigInt sum_ct;
    for (size_t t = 0; t < fleet; ++t) {
      std::vector<uint64_t> values(counters);
      for (size_t j = 0; j < counters; ++j) {
        values[j] = data_rng.Next() % (max_value + 1);
        expected[j] += values[j];
      }
      auto ct = agg->EncryptPacked(values, rng_.get());
      ASSERT_TRUE(ct.ok());
      sum_ct = t == 0 ? *ct : agg->Add(sum_ct, *ct);
    }
    auto totals = agg->DecryptUnpack(sum_ct);
    ASSERT_TRUE(totals.ok());
    EXPECT_EQ(*totals, expected);
  }
}

// ---------------------------------------------------------------------------
// SecureToken packed encryption.
// ---------------------------------------------------------------------------

TEST_F(PackedAggregateTest, SecureTokenEncryptPackedCountsSlots) {
  auto agg = PackedAggregate::Create(*paillier_, 64, 255, 8);
  ASSERT_TRUE(agg.ok());
  mcu::SecureToken::Config config;
  config.token_id = 3;
  config.rng_seed = 77;
  mcu::SecureToken token(config);
  std::vector<uint64_t> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto ct = token.EncryptPacked(*agg, values);
  ASSERT_TRUE(ct.ok()) << ct.status().ToString();
  EXPECT_EQ(token.crypto_ops().encryptions, 1u);
  EXPECT_EQ(token.crypto_ops().packed_slots, 8u);
  auto back = agg->DecryptUnpack(*ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, values);

  token.Tamper();
  EXPECT_FALSE(token.EncryptPacked(*agg, values).ok());
}

}  // namespace
}  // namespace pds::crypto
