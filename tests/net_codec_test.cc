// pds::net codec: round-trips for every message type, and the totality
// guarantee — truncated, mutated, oversized or trailing-garbage frames
// return Status errors without crashes or partial state (exercised under
// ASan by the sanitizer CI job).

#include <gtest/gtest.h>

#include "net/codec.h"

namespace pds::net {
namespace {

Bytes SomeCiphertext(uint8_t tag, size_t n) {
  Bytes ct(n);
  for (size_t i = 0; i < n; ++i) {
    ct[i] = static_cast<uint8_t>(tag + i);
  }
  return ct;
}

std::vector<Message> AllMessageTypes() {
  std::vector<Message> msgs;
  msgs.push_back({ChallengeMsg{SomeCiphertext(1, 16)}});
  HelloMsg hello;
  hello.token_id = 42;
  for (size_t i = 0; i < hello.proof.size(); ++i) {
    hello.proof[i] = static_cast<uint8_t>(i * 3);
  }
  msgs.push_back({hello});
  msgs.push_back({HelloAckMsg{true}});
  RoundRequestMsg req;
  req.header = {7, RoundKind::kAggregate, global::AggFunc::kAvg};
  req.batch = {SomeCiphertext(2, 40), SomeCiphertext(3, 64)};
  msgs.push_back({req});
  PartitionMapMsg pm;
  pm.round_id = 9;
  pm.parts = {{0, 2, 100}, {1, 0, 56}};
  msgs.push_back({pm});
  TupleBatchMsg tb;
  tb.round_id = 7;
  tb.token_ops = 12;
  tb.batch = {SomeCiphertext(4, 33)};
  msgs.push_back({tb});
  AggResultMsg ar;
  ar.round_id = 8;
  ar.token_ops = 5;
  ar.entries = {{"lyon", 123.5, 4}, {"paris", -2.25, 9}};
  msgs.push_back({ar});
  msgs.push_back({ErrorMsg{3, "boom"}});
  msgs.push_back({ByeMsg{}});
  msgs.push_back({StatsRequestMsg{}});
  msgs.push_back({StatsReplyMsg{"{\"sessions\": []}"}});
  return msgs;
}

TEST(NetCodecTest, RoundTripEveryMessageType) {
  for (const Message& m : AllMessageTypes()) {
    Bytes frame = EncodeMessage(m);
    ASSERT_GE(frame.size(), kFrameHeaderSize);
    auto header = DecodeFrameHeader(frame);
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    EXPECT_EQ(header->type, m.type());
    EXPECT_EQ(header->payload_len, frame.size() - kFrameHeaderSize);
    auto decoded = DecodeMessage(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == m) << "type "
                               << static_cast<int>(m.type());
  }
}

TEST(NetCodecTest, PackedCollectRoundKindRoundTrips) {
  RoundRequestMsg req;
  req.header = {11, RoundKind::kPackedCollect, global::AggFunc::kSum};
  // The batch carries the public domain labels in slot order.
  req.batch = {SomeCiphertext(5, 6), SomeCiphertext(6, 6)};
  Bytes frame = EncodeRoundRequest(req);
  auto decoded = DecodeAs<RoundRequestMsg>(ByteView(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == req);

  // The kind byte sits after the header and the u32 round id; values past
  // kClassAggregate are still corruption.
  frame[kFrameHeaderSize + 4] = 8;
  EXPECT_FALSE(DecodeMessage(ByteView(frame)).ok());
}

TEST(NetCodecTest, PackedDomainRejectsOversizedSlotCount) {
  // The packed round's label list is sized by a wire-declared count; the
  // decoder must reject counts past kMaxPackedSlots before sizing anything.
  RoundRequestMsg req;
  req.header = {12, RoundKind::kPackedCollect, global::AggFunc::kSum};
  for (size_t i = 0; i <= kMaxPackedSlots; ++i) {
    req.batch.push_back(SomeCiphertext(static_cast<uint8_t>(i), 4));
  }
  Bytes frame = EncodeRoundRequest(req);
  EXPECT_EQ(DecodeMessage(frame).status().code(), StatusCode::kCorruption);

  // The same count is fine on the ordinary aggregate path, which is bounded
  // by kMaxBatchTuples rather than the packed slot layout.
  req.header.kind = RoundKind::kAggregate;
  Bytes ok_frame = EncodeRoundRequest(req);
  auto decoded = DecodeMessage(ok_frame);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
}

TEST(NetCodecTest, HeaderRejectsBadMagic) {
  Bytes frame = EncodeBye();
  frame[0] ^= 0xFF;
  EXPECT_EQ(DecodeMessage(frame).status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, HeaderRejectsWrongVersion) {
  Bytes frame = EncodeBye();
  frame[2] = kWireVersionTraced + 1;
  EXPECT_EQ(DecodeMessage(frame).status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, UntracedFramesStillDecodeWithoutTraceContext) {
  // Back-compat: every v1 frame decodes exactly as before, with no trace
  // context attached.
  for (const Message& m : AllMessageTypes()) {
    Bytes frame = EncodeMessage(m);
    EXPECT_EQ(frame[2], kWireVersion);
    auto decoded = DecodeMessage(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_FALSE(decoded->trace.has_value());
  }
}

TEST(NetCodecTest, TraceContextRoundTripsOnEveryMessageType) {
  const TraceContext ctx{0x1122334455667788ULL, 0xAABBCCDDEEFF0011ULL, true};
  for (const Message& m : AllMessageTypes()) {
    Bytes traced = AttachTraceContext(EncodeMessage(m), ctx);
    auto header = DecodeFrameHeader(traced);
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    EXPECT_EQ(header->version, kWireVersionTraced);
    auto decoded = DecodeMessage(traced);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_TRUE(decoded->trace.has_value());
    EXPECT_EQ(*decoded->trace, ctx);
    EXPECT_TRUE(decoded->body == m.body)
        << "type " << static_cast<int>(m.type());
  }
}

TEST(NetCodecTest, TracedHeaderRejectsTruncatedTraceBlock) {
  // A v2 frame whose declared payload cannot even hold the trace block is
  // rejected from the header alone, before any allocation.
  Bytes frame = EncodeBye();  // payload_len = 0
  frame[2] = kWireVersionTraced;
  EXPECT_EQ(DecodeFrameHeader(frame).status().code(),
            StatusCode::kCorruption);

  // One byte short of a full trace block: still a header-level reject.
  Bytes traced = AttachTraceContext(EncodeBye(), TraceContext{1, 2, true});
  traced.pop_back();
  EncodeU32(traced.data() + 4,
            static_cast<uint32_t>(traced.size() - kFrameHeaderSize));
  EXPECT_EQ(DecodeFrameHeader(traced).status().code(),
            StatusCode::kCorruption);
}

TEST(NetCodecTest, TraceContextRejectsUndefinedFlagBits) {
  Bytes traced = AttachTraceContext(EncodeBye(), TraceContext{1, 2, false});
  // The flags byte is the last byte of the 17-byte trace block.
  traced[kFrameHeaderSize + kTraceContextSize - 1] = 0x02;
  EXPECT_EQ(DecodeMessage(traced).status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, TraceContextTruncationSweepNeverSucceeds) {
  Bytes traced = AttachTraceContext(
      EncodeStatsReply(StatsReplyMsg{"{\"fleet\": {}}"}),
      TraceContext{3, 4, true});
  for (size_t len = 0; len < traced.size(); ++len) {
    EXPECT_FALSE(DecodeMessage(ByteView(traced.data(), len)).ok())
        << "prefix " << len;
  }
}

TEST(NetCodecTest, StatsReplyRejectsOversizedDeclaredJson) {
  // A lying JSON length past kMaxStatsJsonBytes must be rejected before the
  // decoder sizes the string.
  Bytes frame;
  PutU16(&frame, kMagic);
  frame.push_back(kWireVersion);
  frame.push_back(static_cast<uint8_t>(MsgType::kStatsReply));
  PutU32(&frame, 4);  // payload: just the string length
  PutU32(&frame, static_cast<uint32_t>(kMaxStatsJsonBytes + 1));
  auto decoded = DecodeMessage(frame);
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, HeaderRejectsUnknownType) {
  Bytes frame = EncodeBye();
  frame[3] = 200;
  EXPECT_EQ(DecodeMessage(frame).status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, HeaderRejectsOversizedDeclaredLength) {
  // A lying length field must be rejected from the 8 header bytes alone,
  // before any payload allocation.
  Bytes frame = EncodeBye();
  EncodeU32(frame.data() + 4, static_cast<uint32_t>(kMaxFramePayload + 1));
  EXPECT_EQ(DecodeFrameHeader(frame).status().code(),
            StatusCode::kCorruption);
}

TEST(NetCodecTest, RejectsLengthMismatch) {
  TupleBatchMsg tb;
  tb.round_id = 1;
  tb.batch = {SomeCiphertext(1, 10)};
  Bytes frame = EncodeTupleBatch(tb);
  frame.push_back(0);  // trailing junk beyond the declared payload
  EXPECT_EQ(DecodeMessage(frame).status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, RejectsTrailingBytesInsidePayload) {
  // Junk *inside* the declared payload (decoder finishes early).
  Bytes frame = EncodeHelloAck(HelloAckMsg{true});
  frame.push_back(0xAB);
  EncodeU32(frame.data() + 4,
            static_cast<uint32_t>(frame.size() - kFrameHeaderSize));
  EXPECT_EQ(DecodeMessage(frame).status().code(), StatusCode::kCorruption);
}

TEST(NetCodecTest, RejectsBatchCountAboveBound) {
  // Hand-build a TupleBatch whose declared item count exceeds
  // kMaxBatchTuples while the frame itself stays tiny.
  Bytes frame;
  PutU16(&frame, kMagic);
  frame.push_back(kWireVersion);
  frame.push_back(static_cast<uint8_t>(MsgType::kTupleBatch));
  PutU32(&frame, 4 + 8 + 4);  // round_id + token_ops + count
  PutU32(&frame, 1);          // round_id
  PutU64(&frame, 0);          // token_ops
  PutU32(&frame, static_cast<uint32_t>(kMaxBatchTuples + 1));
  auto decoded = DecodeMessage(frame);
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(decoded.status().message().find("kMaxBatchTuples"),
            std::string::npos);
}

TEST(NetCodecTest, TruncationSweepNeverSucceeds) {
  for (const Message& m : AllMessageTypes()) {
    Bytes frame = EncodeMessage(m);
    for (size_t len = 0; len < frame.size(); ++len) {
      auto decoded = DecodeMessage(ByteView(frame.data(), len));
      EXPECT_FALSE(decoded.ok())
          << "type " << static_cast<int>(m.type()) << " prefix " << len;
    }
  }
}

TEST(NetCodecTest, MutationSweepIsErrorClean) {
  // Flip every byte of every message type two ways. A mutation may still
  // decode (e.g. a flipped bit inside a counter value) but must never
  // crash, read out of bounds, or leave a half-built message — and
  // whatever decodes must re-encode cleanly.
  for (const Message& m : AllMessageTypes()) {
    Bytes frame = EncodeMessage(m);
    for (size_t i = 0; i < frame.size(); ++i) {
      for (uint8_t flip : {uint8_t{0x01}, uint8_t{0xFF}}) {
        Bytes mutated = frame;
        mutated[i] ^= flip;
        auto decoded = DecodeMessage(mutated);
        if (decoded.ok()) {
          Bytes reencoded = EncodeMessage(*decoded);
          EXPECT_GE(reencoded.size(), kFrameHeaderSize);
        }
      }
    }
  }
}

TEST(NetCodecTest, DecodeAsEnforcesType) {
  Bytes frame = EncodeHelloAck(HelloAckMsg{true});
  auto wrong = DecodeAs<TupleBatchMsg>(frame);
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
  auto right = DecodeAs<HelloAckMsg>(frame);
  ASSERT_TRUE(right.ok());
  EXPECT_TRUE(right->accepted);
}

TEST(NetCodecTest, DecodeAsSurfacesPeerError) {
  Bytes frame = EncodeError(ErrorMsg{1, "token on fire"});
  auto got = DecodeAs<TupleBatchMsg>(frame);
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(got.status().message().find("token on fire"), std::string::npos);
}

TEST(NetCodecTest, EmptyBatchAndEmptyEntriesRoundTrip) {
  RoundRequestMsg req;
  req.header = {1, RoundKind::kCollect, global::AggFunc::kSum};
  auto decoded = DecodeMessage(EncodeRoundRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::get<RoundRequestMsg>(decoded->body).batch.empty());

  AggResultMsg ar;
  ar.round_id = 2;
  auto decoded2 = DecodeMessage(EncodeAggResult(ar));
  ASSERT_TRUE(decoded2.ok());
  EXPECT_TRUE(std::get<AggResultMsg>(decoded2->body).entries.empty());
}

}  // namespace
}  // namespace pds::net
