#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "global/fleet_executor.h"
#include "obs/obs.h"
#include "workloads/tpcd.h"

namespace pds::obs {
namespace {

// Tests of live recording behavior are meaningless when the layer is
// compiled out; the registry/structure tests below still run.
#if PDS_OBS_ENABLED
#define SKIP_IF_OBS_DISABLED() (void)0
#else
#define SKIP_IF_OBS_DISABLED() GTEST_SKIP() << "built with PDS_OBS=OFF"
#endif

// Each TEST runs in its own process (gtest_discover_tests), but tests still
// reset the global tracer themselves so they hold under --gtest_filter=*.
void FreshTracer(size_t capacity = 1 << 12) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.SetSampleEveryN(1);
  tracer.SetCapacity(capacity);
  tracer.SetEnabled(true);
}

size_t CountEvents(std::string_view name) {
  size_t n = 0;
  for (const SpanEvent& e : Tracer::Global().Events()) {
    if (name == e.name) {
      ++n;
    }
  }
  return n;
}

TEST(ObsCounter, AddValueReset) {
  SKIP_IF_OBS_DISABLED();
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsGauge, TracksLastValueAndMax) {
  SKIP_IF_OBS_DISABLED();
  Gauge g;
  g.Set(10);
  g.Set(100);
  g.Set(25);
  EXPECT_DOUBLE_EQ(g.Value(), 25.0);
  EXPECT_DOUBLE_EQ(g.max(), 100.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_DOUBLE_EQ(g.max(), 0.0);
}

TEST(ObsHistogram, Moments) {
  SKIP_IF_OBS_DISABLED();
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty histogram reads as zeros
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Record(2.0);
  h.Record(8.0);
  h.Record(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  h.Record(3.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);  // Reset re-arms the min sentinel
}

TEST(ObsHistogram, PowerOfTwoBuckets) {
  SKIP_IF_OBS_DISABLED();
  Histogram h;
  h.Record(1.5);  // frexp exp = 1
  h.Record(1.5);
  h.Record(100.0);  // frexp exp = 7
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(7), 1u);
}

TEST(ObsHistogram, PercentileWithinDocumentedRelativeError) {
  SKIP_IF_OBS_DISABLED();
  // Deterministic sweep: 1..1000, each exactly once. The exact percentile-p
  // value under the nearest-rank definition is then ceil(10 * p).
  Histogram h;
  for (int v = 1; v <= 1000; ++v) {
    h.Record(static_cast<double>(v));
  }
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    double exact = std::ceil(10.0 * p);
    double got = h.Percentile(p);
    double rel_err = std::abs(got - exact) / exact;
    EXPECT_LE(rel_err, Histogram::kMaxRelativeError)
        << "p" << p << ": got " << got << ", exact " << exact;
  }
  // Percentiles are monotone in p and clamped to the observed range.
  double prev = 0;
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    double got = h.Percentile(p);
    EXPECT_GE(got, prev) << "p" << p;
    prev = got;
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
}

TEST(ObsHistogram, PercentileEdgeCases) {
  SKIP_IF_OBS_DISABLED();
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);  // empty histogram reads as 0
  h.Record(7.0);
  // One sample: every percentile clamps to the single observed value.
  EXPECT_DOUBLE_EQ(h.Percentile(1), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.9), 7.0);
}

TEST(ObsSnapshotRing, CapturesDeltasAndEvictsOldest) {
  SKIP_IF_OBS_DISABLED();
  Registry& reg = Registry::Global();
  Counter* c = reg.GetCounter("obs_test.ring.rounds", "ops");
  SnapshotRing ring(2);
  EXPECT_EQ(ring.capacity(), 2u);

  c->Add(5);
  ring.Capture(reg);
  c->Add(2);
  ring.Capture(reg);

  auto delta_for = [](const SnapshotRing::Snapshot& snap,
                      std::string_view name) -> const SnapshotRing::Delta* {
    for (const SnapshotRing::Delta& d : snap.deltas) {
      if (d.name == name) {
        return &d;
      }
    }
    return nullptr;
  };
  std::vector<SnapshotRing::Snapshot> snaps = ring.Snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  const SnapshotRing::Delta* first = delta_for(snaps[0], "obs_test.ring.rounds");
  ASSERT_NE(first, nullptr);
  EXPECT_DOUBLE_EQ(first->value, 5.0);
  EXPECT_DOUBLE_EQ(first->delta, 5.0);
  const SnapshotRing::Delta* second =
      delta_for(snaps[1], "obs_test.ring.rounds");
  ASSERT_NE(second, nullptr);
  EXPECT_DOUBLE_EQ(second->value, 7.0);
  EXPECT_DOUBLE_EQ(second->delta, 2.0);

  // An idle capture stores no delta for the unchanged counter; a third
  // capture evicts the oldest snapshot but the total capture count keeps
  // climbing.
  ring.Capture(reg);
  snaps = ring.Snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(ring.captures(), 3u);
  EXPECT_EQ(snaps[1].seq, 3u);
  EXPECT_EQ(delta_for(snaps[1], "obs_test.ring.rounds"), nullptr);

  std::string json = ring.Json();
  EXPECT_NE(json.find("\"captures\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.ring.rounds\""), std::string::npos);
}

TEST(ObsRegistry, FindOrCreateIsStable) {
  Registry& reg = Registry::Global();
  Counter* a = reg.GetCounter("obs_test.stable", "ops");
  Counter* b = reg.GetCounter("obs_test.stable", "ops");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("obs_test.other", "ops"));

  Gauge* g = reg.GetGauge("obs_test.gauge", "bytes");
  Histogram* h = reg.GetHistogram("obs_test.hist", "us");
  a->Add(7);
  g->Set(3.5);
  h->Record(1.0);

  std::string json = reg.MetricsJson();
  EXPECT_NE(json.find("\"obs_test.stable\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"bytes\""), std::string::npos);

  size_t before = reg.num_metrics();
  reg.ResetValues();
  EXPECT_EQ(reg.num_metrics(), before);  // registration survives
  EXPECT_EQ(a->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
}

TEST(ObsSpan, NestingRecordsParentLinkage) {
  SKIP_IF_OBS_DISABLED();
  FreshTracer();
  {
    Span outer("outer", "test");
    outer.AddArg("k", 1.0);
    {
      Span inner("inner", "test");
    }
  }
  Tracer::Global().SetEnabled(false);

  auto events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // The inner span ends (and is appended) first.
  const SpanEvent& inner = events[0];
  const SpanEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.tid, outer.tid);
  ASSERT_EQ(outer.num_args, 1u);
  EXPECT_STREQ(outer.arg_key[0], "k");
  EXPECT_DOUBLE_EQ(outer.arg_val[0], 1.0);
}

TEST(ObsSpan, RemoteParentAdoptsCrossProcessSpanId) {
  SKIP_IF_OBS_DISABLED();
  FreshTracer();
  const uint64_t remote_id = 0xC0FFEE;
  {
    Span span("remote-child", "test", RemoteParent{remote_id, true});
    EXPECT_NE(span.id(), 0u);
    {
      Span nested("remote-grandchild", "test");
    }
  }
  Tracer::Global().SetEnabled(false);

  auto events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  const SpanEvent& nested = events[0];
  const SpanEvent& child = events[1];
  EXPECT_STREQ(child.name, "remote-child");
  EXPECT_EQ(child.parent, remote_id);  // parented across the process gap
  EXPECT_EQ(nested.parent, child.id);  // locals nest under it as usual
}

TEST(ObsSpan, UnsampledRemoteParentSuppressesSubtree) {
  SKIP_IF_OBS_DISABLED();
  FreshTracer();
  {
    // The remote root decided not to sample; the local subtree follows that
    // decision instead of consulting the local sampler.
    Span span("unsampled-child", "test", RemoteParent{77, false});
    EXPECT_EQ(span.id(), 0u);
    {
      Span nested("unsampled-grandchild", "test");
    }
  }
  Tracer::Global().SetEnabled(false);
  EXPECT_EQ(Tracer::Global().num_events(), 0u);
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
}

TEST(ObsSpan, DisabledTracerRecordsNothing) {
  FreshTracer();
  Tracer::Global().SetEnabled(false);
  {
    Span span("ignored", "test");
  }
  Tracer::Global().Instant("ignored-instant", "test");
  EXPECT_EQ(Tracer::Global().num_events(), 0u);
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
}

TEST(ObsSpan, SamplerKeepsOneRootInN) {
  SKIP_IF_OBS_DISABLED();
  FreshTracer();
  Tracer::Global().SetSampleEveryN(4);
  for (int i = 0; i < 8; ++i) {
    Span root("sampled-root", "test");
    Span child("sampled-child", "test");  // follows its root's fate
  }
  Tracer::Global().SetEnabled(false);
  Tracer::Global().SetSampleEveryN(1);
  EXPECT_EQ(CountEvents("sampled-root"), 2u);
  EXPECT_EQ(CountEvents("sampled-child"), 2u);
  EXPECT_EQ(Tracer::Global().dropped(), 0u);  // sampling is not loss
}

TEST(ObsSpan, CapacityOverflowCountsDrops) {
  SKIP_IF_OBS_DISABLED();
  FreshTracer(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    Span span("overflow", "test");
  }
  Tracer::Global().SetEnabled(false);
  EXPECT_EQ(Tracer::Global().num_events(), 2u);
  EXPECT_EQ(Tracer::Global().dropped(), 3u);
}

TEST(ObsTracer, InstantEventsCarryArgs) {
  SKIP_IF_OBS_DISABLED();
  FreshTracer();
  Tracer::Global().Instant("marker", "leakage", "classes", 5.0, "frac", 0.25);
  Tracer::Global().SetEnabled(false);

  auto events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].instant);
  EXPECT_STREQ(events[0].category, "leakage");
  ASSERT_EQ(events[0].num_args, 2u);
  EXPECT_DOUBLE_EQ(events[0].arg_val[0], 5.0);
  EXPECT_DOUBLE_EQ(events[0].arg_val[1], 0.25);
}

TEST(ObsTracer, ChromeTraceExportShape) {
  SKIP_IF_OBS_DISABLED();
  FreshTracer();
  {
    Span span("export-me", "test");
  }
  Tracer::Global().Instant("mark", "test");
  Tracer::Global().SetEnabled(false);

  std::string json = Tracer::Global().ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"export-me\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
}

TEST(ObsTracer, InternedNamesAreStable) {
  const char* a = Tracer::Global().Intern(std::string("obs_test.dyn"));
  const char* b = Tracer::Global().Intern(std::string("obs_test.dyn"));
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "obs_test.dyn");
}

// The satellite concurrency contract: FleetExecutor worker threads record
// their fleet.unit spans loss-free, and the aggregate counters are identical
// at any thread count. Run under the tsan preset (tests/CMakePresets filter
// includes "Obs").
TEST(ObsFleetConcurrency, SpansAndCountersAreThreadCountInvariant) {
  SKIP_IF_OBS_DISABLED();
  constexpr size_t kUnits = 64;
  Counter* work = Registry::Global().GetCounter("obs_test.fleet_work", "ops");
  uint64_t expected_total = 0;
  for (size_t i = 0; i < kUnits; ++i) {
    expected_total += i + 1;
  }

  for (size_t threads : {1u, 2u, 8u}) {
    FreshTracer();
    work->Reset();

    global::FleetExecutor executor(threads);
    std::atomic<uint64_t> local_sum{0};
    Status s = executor.ParallelFor(kUnits, [&](size_t i) {
      work->Add(i + 1);
      local_sum.fetch_add(i + 1, std::memory_order_relaxed);
      return Status::Ok();
    });
    Tracer::Global().SetEnabled(false);

    ASSERT_TRUE(s.ok()) << "threads=" << threads;
    EXPECT_EQ(Tracer::Global().dropped(), 0u) << "threads=" << threads;
    EXPECT_EQ(CountEvents("fleet.unit"), kUnits) << "threads=" << threads;
    EXPECT_EQ(CountEvents("fleet.parallel_for"), 1u) << "threads=" << threads;
    EXPECT_EQ(work->Value(), expected_total) << "threads=" << threads;
    EXPECT_EQ(local_sum.load(), expected_total) << "threads=" << threads;
  }
}

// End-to-end EXPLAIN ANALYZE contract: the per-operator page-read counts in
// a QueryProfile must account for every chip page read during the query.
TEST(ObsSpjProfile, StageReadsMatchFlashStatsDelta) {
  flash::Geometry geo;
  geo.page_size = 2048;
  geo.pages_per_block = 64;
  geo.block_count = 512;
  auto chip = std::make_unique<flash::FlashChip>(geo);
  mcu::RamGauge build_ram(8 * 1024 * 1024);
  embdb::Database db(chip.get(), &build_ram);

  workloads::TpcdConfig cfg;
  cfg.num_suppliers = 4;
  cfg.num_customers = 12;
  cfg.num_orders = 40;
  cfg.num_partsupps = 20;
  cfg.num_lineitems = 150;
  cfg.table_options.data_blocks = 16;
  cfg.table_options.directory_blocks = 4;
  auto inst = workloads::LoadTpcd(&db, cfg);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();

  auto tjoin = embdb::TjoinIndex::Build(inst->path, db.allocator());
  auto tsel_cust = embdb::TselectIndex::Build(
      inst->path, workloads::TpcdNode::kCustomer, 2, db.allocator(),
      &build_ram);
  auto tsel_supp = embdb::TselectIndex::Build(
      inst->path, workloads::TpcdNode::kSupplier, 1, db.allocator(),
      &build_ram);
  ASSERT_TRUE(tjoin.ok() && tsel_cust.ok() && tsel_supp.ok());

  embdb::SpjQuery query = workloads::TutorialQuery(0, 1);
  mcu::RamGauge token_ram(64 * 1024);
  embdb::SpjExecutor executor(inst->path, &*tjoin, {&*tsel_cust, &*tsel_supp},
                              &token_ram);
  embdb::SpjStats stats;
  embdb::QueryProfile profile;
  flash::Stats before = chip->stats();
  Status s = executor.Execute(
      query, [](const embdb::Tuple&) { return Status::Ok(); }, &stats,
      &profile);
  ASSERT_TRUE(s.ok()) << s.ToString();
  flash::Stats delta = chip->stats() - before;

  ASSERT_EQ(profile.stages.size(), 3u);
  EXPECT_STREQ(profile.stages[0].op, "tselect");
  EXPECT_STREQ(profile.stages[1].op, "merge");
  EXPECT_STREQ(profile.stages[2].op, "join-fetch");
  EXPECT_EQ(profile.total_page_reads(), delta.page_reads);
  EXPECT_GT(delta.page_reads, 0u);
  for (const embdb::StageProfile& stage : profile.stages) {
    EXPECT_GT(stage.ram_peak_bytes, 0u);
  }
  // The rendered profile mentions every stage.
  std::string table = profile.ToString();
  EXPECT_NE(table.find("tselect"), std::string::npos);
  EXPECT_NE(table.find("join-fetch"), std::string::npos);
  EXPECT_NE(table.find("page_reads"), std::string::npos);
}

}  // namespace
}  // namespace pds::obs
