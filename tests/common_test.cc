#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace pds {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllFactoryCodesDistinct) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),  Status::NotFound("").code(),
      Status::AlreadyExists("").code(),    Status::OutOfRange("").code(),
      Status::ResourceExhausted("").code(), Status::IoError("").code(),
      Status::Corruption("").code(),       Status::PermissionDenied("").code(),
      Status::FailedPrecondition("").code(),
      Status::IntegrityViolation("").code(),
      Status::Unimplemented("").code(),    Status::Internal("").code(),
  };
  EXPECT_EQ(codes.size(), 12u);
}

Status FailsThenUnreachable(bool fail) {
  PDS_RETURN_IF_ERROR(fail ? Status::IoError("boom") : Status::Ok());
  return Status::NotFound("reached past the macro");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenUnreachable(true).code(), StatusCode::kIoError);
  EXPECT_EQ(FailsThenUnreachable(false).code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubled(Result<int> in) {
  PDS_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::IoError("x")).status().code(),
            StatusCode::kIoError);
}

TEST(ResultTest, DefaultConstructedIsInternalError) {
  Result<int> r;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.status().message(), "uninitialized Result");
}

TEST(ResultTest, OkStatusCannotSmuggleIntoErrorCtor) {
  Result<int> r = Status::Ok();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

using ResultDeathTest = ::testing::Test;

TEST(ResultDeathTest, ValueOnErrorAbortsWithStoredMessage) {
  Result<int> r = Status::NotFound("row 17 missing from keys log");
  EXPECT_DEATH(r.value(), "NotFound: row 17 missing from keys log");
}

TEST(ResultDeathTest, ValueOnDefaultConstructedNamesTheBug) {
  Result<int> r;
  EXPECT_DEATH(r.value(), "Internal: uninitialized Result");
}

TEST(ResultDeathTest, DereferenceAndArrowAlsoNameTheFailure) {
  Result<std::string> r = Status::PermissionDenied("token rejected query");
  EXPECT_DEATH(*r, "PermissionDenied: token rejected query");
  EXPECT_DEATH(r->size(), "PermissionDenied: token rejected query");
}

TEST(BytesTest, FixedWidthRoundTrip) {
  Bytes b;
  PutU16(&b, 0xBEEF);
  PutU32(&b, 0xDEADBEEFu);
  PutU64(&b, 0x0123456789ABCDEFULL);
  ASSERT_EQ(b.size(), 14u);
  EXPECT_EQ(GetU16(b.data()), 0xBEEF);
  EXPECT_EQ(GetU32(b.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(GetU64(b.data() + 6), 0x0123456789ABCDEFULL);
}

TEST(BytesTest, EncodeInPlace) {
  uint8_t buf[12] = {0};
  EncodeU32(buf, 0x01020304u);
  EncodeU64(buf + 4, 0x1122334455667788ULL);
  EXPECT_EQ(GetU32(buf), 0x01020304u);
  EXPECT_EQ(GetU64(buf + 4), 0x1122334455667788ULL);
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  Bytes b;
  PutLengthPrefixed(&b, ByteView(std::string_view("hello")));
  PutLengthPrefixed(&b, ByteView(std::string_view("")));
  PutLengthPrefixed(&b, ByteView(std::string_view("world!")));

  size_t pos = 0;
  ByteView v;
  ASSERT_TRUE(GetLengthPrefixed(ByteView(b), &pos, &v));
  EXPECT_EQ(v.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixed(ByteView(b), &pos, &v));
  EXPECT_EQ(v.ToString(), "");
  ASSERT_TRUE(GetLengthPrefixed(ByteView(b), &pos, &v));
  EXPECT_EQ(v.ToString(), "world!");
  EXPECT_FALSE(GetLengthPrefixed(ByteView(b), &pos, &v));
}

TEST(BytesTest, LengthPrefixedRejectsTruncation) {
  Bytes b;
  PutLengthPrefixed(&b, ByteView(std::string_view("hello")));
  b.pop_back();
  size_t pos = 0;
  ByteView v;
  EXPECT_FALSE(GetLengthPrefixed(ByteView(b), &pos, &v));
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(ToHex(ByteView(b)), "0001abff");
  EXPECT_EQ(FromHex("0001abff"), b);
  EXPECT_EQ(FromHex("0001ABFF"), b);
}

TEST(ByteViewTest, Equality) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ByteView(a) == ByteView(b));
  EXPECT_FALSE(ByteView(a) == ByteView(c));
  EXPECT_TRUE(ByteView() == ByteView());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of Uniform(0,1) is 0.5; loose bound.
  EXPECT_NEAR(sum / 10000, 0.5, 0.05);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(RngTest, FillBytesCoversAllPositions) {
  Rng rng(19);
  uint8_t buf[37];
  std::memset(buf, 0, sizeof(buf));
  // After several fills, every position should have been nonzero at least
  // once with overwhelming probability.
  uint8_t seen[37] = {0};
  for (int round = 0; round < 20; ++round) {
    rng.FillBytes(buf, sizeof(buf));
    for (size_t i = 0; i < sizeof(buf); ++i) {
      seen[i] |= buf[i];
    }
  }
  for (size_t i = 0; i < sizeof(buf); ++i) {
    EXPECT_NE(seen[i], 0) << "position " << i;
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler z(10, 0.0, 31);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) {
    ++counts[z.Sample()];
  }
  for (auto& [rank, count] : counts) {
    EXPECT_LT(rank, 10u);
    EXPECT_NEAR(count, 1000, 250);
  }
}

TEST(ZipfTest, SkewedFavorsLowRanks) {
  ZipfSampler z(1000, 0.99, 37);
  int rank0 = 0, high_ranks = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t r = z.Sample();
    EXPECT_LT(r, 1000u);
    if (r == 0) ++rank0;
    if (r >= 500) ++high_ranks;
  }
  EXPECT_GT(rank0, high_ranks);  // head dominates tail
  EXPECT_GT(rank0, 500);
}

TEST(HashTest, Fnv1aKnownProperties) {
  // Different inputs hash differently (sanity, not cryptographic).
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
  // Stable across calls.
  EXPECT_EQ(Fnv1a64("lyon"), Fnv1a64("lyon"));
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit flips roughly half the output bits.
  uint64_t base = Mix64(0x12345678);
  uint64_t flipped = Mix64(0x12345679);
  int diff_bits = __builtin_popcountll(base ^ flipped);
  EXPECT_GT(diff_bits, 16);
  EXPECT_LT(diff_bits, 48);
}

}  // namespace
}  // namespace pds
