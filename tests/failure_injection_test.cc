// Failure-injection tests: bit rot and unreadable pages on the simulated
// NAND must surface as explicit errors at every layer — never as silently
// wrong answers from the structures that can detect them.

#include <gtest/gtest.h>

#include "embdb/table_heap.h"
#include "embdb/tree_index.h"
#include "embdb/key_index.h"
#include "embdb/reorganize.h"
#include "flash/flash.h"
#include "logstore/sequential_log.h"
#include "mcu/ram_gauge.h"
#include "mcu/secure_token.h"
#include "sync/folder.h"

namespace pds {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.page_size = 256;
  g.pages_per_block = 4;
  g.block_count = 512;
  return g;
}

TEST(FaultInjectionTest, BadPageSurfacesIoError) {
  flash::FlashChip chip(SmallGeometry());
  Bytes data(10, 0xAB);
  ASSERT_TRUE(chip.ProgramPage(3, ByteView(data)).ok());
  ASSERT_TRUE(chip.MarkBadPage(3).ok());
  Bytes out;
  EXPECT_EQ(chip.ReadPage(3, &out).code(), StatusCode::kIoError);
  // Other pages unaffected.
  ASSERT_TRUE(chip.ProgramPage(4, ByteView(data)).ok());
  EXPECT_TRUE(chip.ReadPage(4, &out).ok());
}

TEST(FaultInjectionTest, CorruptBitFlipsExactlyOneBit) {
  flash::FlashChip chip(SmallGeometry());
  Bytes data(256, 0x00);
  ASSERT_TRUE(chip.ProgramPage(0, ByteView(data)).ok());
  ASSERT_TRUE(chip.CorruptBit(0, 8 * 100 + 3).ok());
  Bytes out;
  ASSERT_TRUE(chip.ReadPage(0, &out).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i == 100 ? 0x08 : 0x00) << i;
  }
  EXPECT_EQ(chip.CorruptBit(99999, 0).code(), StatusCode::kOutOfRange);
}

TEST(FaultInjectionTest, TableHeapPropagatesBadPage) {
  flash::FlashChip chip(SmallGeometry());
  flash::PartitionAllocator alloc(&chip);
  embdb::Schema schema("t", {{"v", embdb::ColumnType::kString, ""}});
  auto data = alloc.Allocate(8);
  auto dir = alloc.Allocate(2);
  embdb::TableHeap heap(schema, *data, *dir);
  // Fill enough rows that early pages are sealed to flash.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        heap.Insert({embdb::Value::Str("row-" + std::to_string(i))}).ok());
  }
  // Break the first data page (chip page 0 belongs to the data partition).
  ASSERT_TRUE(chip.MarkBadPage(0).ok());
  EXPECT_EQ(heap.Get(0).status().code(), StatusCode::kIoError);

  auto scanner = heap.NewScanner();
  uint64_t rowid;
  embdb::Tuple tuple;
  EXPECT_EQ(scanner.Next(&rowid, &tuple).code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, CorruptedRecordLengthDetected) {
  flash::FlashChip chip(SmallGeometry());
  flash::PartitionAllocator alloc(&chip);
  auto part = alloc.Allocate(8);
  logstore::RecordLog log(*part);
  std::string payload(300, 'x');  // spans pages, first page sealed
  auto addr = log.Append(ByteView(std::string_view(payload)));
  ASSERT_TRUE(addr.ok());
  // Corrupt the length prefix upward: the claimed record now runs past
  // the log end.
  for (int bit = 24; bit < 32; ++bit) {
    ASSERT_TRUE(chip.CorruptBit(part->num_blocks() * 0 /*page 0*/, bit).ok());
  }
  Bytes record;
  EXPECT_EQ(log.ReadAt(*addr, &record).code(), StatusCode::kCorruption);
}

TEST(FaultInjectionTest, TreeDetectsCorruptedLevelByte) {
  flash::FlashChip chip(SmallGeometry());
  flash::PartitionAllocator alloc(&chip);
  mcu::RamGauge gauge(64 * 1024);
  auto keys = alloc.Allocate(64);
  auto bloom = alloc.Allocate(16);
  embdb::KeyLogIndex source(*keys, *bloom, &gauge, {});
  ASSERT_TRUE(source.Init().ok());
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(source.Insert(embdb::Value::U64(i), i).ok());
  }
  uint32_t blocks_before_tree = alloc.blocks_used();
  auto tree = embdb::Reorganizer::Reorganize(&source, &alloc, &gauge, {});
  ASSERT_TRUE(tree.ok());
  ASSERT_GE(tree->height(), 2u);

  // The internal log partition starts right after the leaf partition.
  // Corrupt the level byte of the first internal page (offset 0).
  uint32_t leaf_pages = tree->num_leaf_pages();
  uint32_t ppb = SmallGeometry().pages_per_block;
  uint32_t leaf_blocks = std::max(1u, (leaf_pages + ppb - 1) / ppb);
  uint32_t internal_first_page =
      (blocks_before_tree + leaf_blocks) * ppb;
  ASSERT_TRUE(chip.CorruptBit(internal_first_page, 0).ok());

  // Some lookup that routes through the corrupted internal page fails
  // loudly with Corruption instead of descending wrong.
  std::vector<uint64_t> rowids;
  embdb::TreeIndex::LookupStats stats;
  bool saw_corruption = false;
  for (uint64_t probe = 0; probe < 2000; probe += 50) {
    Status s = tree->Lookup(embdb::Value::U64(probe), &rowids, &stats);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kCorruption);
      saw_corruption = true;
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST(FaultInjectionTest, FolderBlobCorruptionCaughtByAead) {
  // A corrupted encrypted blob must never decrypt into a wrong entry.
  mcu::SecureToken::Config cfg;
  cfg.token_id = 1;
  cfg.fleet_key = crypto::KeyFromString("fleet");
  mcu::SecureToken token(cfg);
  sync::PersonalFolder folder(&token, 7);
  ASSERT_TRUE(folder.AddEntry("rx", "aspirin").ok());

  auto delta = folder.ExportDelta({}, nullptr);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->size(), 1u);
  (*delta)[0][5] ^= 0x10;

  mcu::SecureToken::Config cfg2 = cfg;
  cfg2.token_id = 2;
  mcu::SecureToken token2(cfg2);
  sync::PersonalFolder replica(&token2, 7);
  Status s = replica.ImportDelta(*delta, nullptr);
  EXPECT_EQ(s.code(), StatusCode::kIntegrityViolation);
  EXPECT_TRUE(replica.entries().empty());
}

TEST(FaultInjectionTest, KeyIndexBloomCorruptionOnlyCostsIo) {
  // Corrupting a Bloom summary can only cause extra page reads (false
  // positives) or, in the worst case, a miss of that page's keys — here we
  // check the structure keeps answering without crashing and that flipping
  // summary bits *on* never loses results.
  flash::FlashChip chip(SmallGeometry());
  flash::PartitionAllocator alloc(&chip);
  mcu::RamGauge gauge(64 * 1024);
  auto keys = alloc.Allocate(64);
  auto bloom = alloc.Allocate(16);
  embdb::KeyLogIndex index(*keys, *bloom, &gauge, {});
  ASSERT_TRUE(index.Init().ok());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(index.Insert(embdb::Value::U64(i), i).ok());
  }
  std::vector<uint64_t> before, after;
  embdb::KeyLogIndex::LookupStats stats;
  ASSERT_TRUE(index.Lookup(embdb::Value::U64(123), &before, &stats).ok());

  // Bloom partition starts at block 64; set a few of its bits.
  uint32_t bloom_first_page = 64 * SmallGeometry().pages_per_block;
  if (chip.IsProgrammed(bloom_first_page)) {
    for (uint32_t bit = 0; bit < 64; bit += 7) {
      // Only 1->0 flips could hide keys; force 0->1-style noise by
      // flipping and accepting either direction — the lookup below
      // tolerates extra positives; equality check keeps the guarantee
      // honest for this seed.
      ASSERT_TRUE(chip.CorruptBit(bloom_first_page, bit * 8).ok());
    }
    ASSERT_TRUE(index.Lookup(embdb::Value::U64(123), &after, &stats).ok());
    // The lookup completed; matches may legitimately differ only if a
    // summary bit guarding page 0 was cleared, which this pattern avoids
    // (we flip byte-aligned low bits of distinct filters).
    EXPECT_EQ(before.size(), after.size());
  }
}

}  // namespace
}  // namespace pds
