#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "embdb/bloom.h"
#include "embdb/table_heap.h"
#include "flash/flash.h"

namespace pds::embdb {
namespace {

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter filter(1024, 5);
  for (int i = 0; i < 50; ++i) {
    std::string key = "key-" + std::to_string(i);
    filter.Add(ByteView(std::string_view(key)));
  }
  for (int i = 0; i < 50; ++i) {
    std::string key = "key-" + std::to_string(i);
    EXPECT_TRUE(filter.MayContain(ByteView(std::string_view(key))));
  }
}

TEST(BloomTest, FalsePositiveRateReasonable) {
  // 64 keys in a 1024-bit filter (16 bits/key, 11 probes) -> fp ~ 0.05%.
  BloomFilter filter(1024, BloomFilter::OptimalProbes(16.0));
  for (int i = 0; i < 64; ++i) {
    std::string key = "present-" + std::to_string(i);
    filter.Add(ByteView(std::string_view(key)));
  }
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    std::string key = "absent-" + std::to_string(i);
    fp += filter.MayContain(ByteView(std::string_view(key))) ? 1 : 0;
  }
  EXPECT_LT(fp, 100);  // < 1%; expected ~0
}

TEST(BloomTest, SerializeRoundTrip) {
  BloomFilter a(256, 4);
  a.Add(ByteView(std::string_view("alpha")));
  a.Add(ByteView(std::string_view("beta")));
  BloomFilter b(ByteView(a.bytes()), 4);
  EXPECT_TRUE(b.MayContain(ByteView(std::string_view("alpha"))));
  EXPECT_TRUE(b.MayContain(ByteView(std::string_view("beta"))));
}

TEST(BloomTest, EmptyFilterRejectsAll) {
  BloomFilter filter(256, 4);
  EXPECT_FALSE(filter.MayContain(ByteView(std::string_view("anything"))));
}

TEST(BloomTest, OptimalProbes) {
  EXPECT_EQ(BloomFilter::OptimalProbes(16.0), 11u);
  EXPECT_EQ(BloomFilter::OptimalProbes(2.0), 1u);
  EXPECT_GE(BloomFilter::OptimalProbes(0.1), 1u);
}

flash::Geometry HeapGeometry() {
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 128;
  return g;
}

Schema CustomerSchema() {
  return Schema("customer", {{"id", ColumnType::kUint64, ""},
                             {"name", ColumnType::kString, ""},
                             {"city", ColumnType::kString, ""}});
}

class TableHeapTest : public ::testing::Test {
 protected:
  TableHeapTest() : chip_(HeapGeometry()), alloc_(&chip_) {
    auto data = alloc_.Allocate(16);
    auto dir = alloc_.Allocate(4);
    heap_ = TableHeap(CustomerSchema(), *data, *dir);
  }

  Tuple Row(uint64_t id, const std::string& name, const std::string& city) {
    return {Value::U64(id), Value::Str(name), Value::Str(city)};
  }

  flash::FlashChip chip_;
  flash::PartitionAllocator alloc_;
  TableHeap heap_;
};

TEST_F(TableHeapTest, InsertAssignsDenseRowids) {
  for (uint64_t i = 0; i < 10; ++i) {
    auto rowid = heap_.Insert(Row(i, "n" + std::to_string(i), "lyon"));
    ASSERT_TRUE(rowid.ok());
    EXPECT_EQ(*rowid, i);
  }
  EXPECT_EQ(heap_.num_rows(), 10u);
}

TEST_F(TableHeapTest, GetReturnsInsertedTuple) {
  ASSERT_TRUE(heap_.Insert(Row(1, "ada", "london")).ok());
  ASSERT_TRUE(heap_.Insert(Row(2, "blaise", "paris")).ok());
  auto t = heap_.Get(1);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)[0].AsU64(), 2u);
  EXPECT_EQ((*t)[1].AsStr(), "blaise");
  EXPECT_EQ((*t)[2].AsStr(), "paris");
}

TEST_F(TableHeapTest, GetRejectsBadRowid) {
  ASSERT_TRUE(heap_.Insert(Row(1, "a", "b")).ok());
  EXPECT_EQ(heap_.Get(5).status().code(), StatusCode::kNotFound);
}

TEST_F(TableHeapTest, InsertValidatesSchema) {
  Tuple bad = {Value::U64(1), Value::U64(2), Value::Str("x")};
  EXPECT_EQ(heap_.Insert(bad).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TableHeapTest, ScannerVisitsAllInOrder) {
  for (uint64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(heap_.Insert(Row(i * 10, "n", "c")).ok());
  }
  auto scanner = heap_.NewScanner();
  uint64_t rowid = 0;
  Tuple tuple;
  uint64_t expected = 0;
  while (!scanner.AtEnd()) {
    ASSERT_TRUE(scanner.Next(&rowid, &tuple).ok());
    EXPECT_EQ(rowid, expected);
    EXPECT_EQ(tuple[0].AsU64(), expected * 10);
    ++expected;
  }
  EXPECT_EQ(expected, 25u);
}

TEST_F(TableHeapTest, RandomAccessCostIsConstant) {
  // Get() costs at most a couple of page reads regardless of table size.
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        heap_.Insert(Row(i, "name-" + std::to_string(i), "city")).ok());
  }
  chip_.ResetStats();
  ASSERT_TRUE(heap_.Get(150).ok());
  EXPECT_LE(chip_.stats().page_reads, 3u);  // directory + data (maybe 2)
}

TEST_F(TableHeapTest, VariableLengthStringsSurvive) {
  Rng rng(3);
  std::vector<std::string> names;
  for (int i = 0; i < 50; ++i) {
    names.push_back(std::string(1 + rng.Uniform(200), 'a' + i % 26));
    ASSERT_TRUE(heap_.Insert(Row(i, names.back(), "c")).ok());
  }
  for (int i = 49; i >= 0; --i) {
    auto t = heap_.Get(i);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)[1].AsStr(), names[i]);
  }
}

}  // namespace
}  // namespace pds::embdb
