#include <gtest/gtest.h>

#include "flash/flash.h"

namespace pds::flash {
namespace {

Geometry SmallGeometry() {
  Geometry g;
  g.page_size = 256;
  g.pages_per_block = 4;
  g.block_count = 8;
  return g;
}

TEST(GeometryTest, DerivedSizes) {
  Geometry g = SmallGeometry();
  EXPECT_EQ(g.total_pages(), 32u);
  EXPECT_EQ(g.total_bytes(), 32u * 256u);
}

TEST(FlashChipTest, ErasedPageReadsAllOnes) {
  FlashChip chip(SmallGeometry());
  Bytes page;
  ASSERT_TRUE(chip.ReadPage(0, &page).ok());
  ASSERT_EQ(page.size(), 256u);
  for (uint8_t b : page) {
    EXPECT_EQ(b, 0xFF);
  }
}

TEST(FlashChipTest, ProgramThenRead) {
  FlashChip chip(SmallGeometry());
  Bytes data = {1, 2, 3, 4};
  ASSERT_TRUE(chip.ProgramPage(5, ByteView(data)).ok());
  Bytes page;
  ASSERT_TRUE(chip.ReadPage(5, &page).ok());
  EXPECT_EQ(page[0], 1);
  EXPECT_EQ(page[3], 4);
  EXPECT_EQ(page[4], 0xFF);  // remainder stays erased
}

TEST(FlashChipTest, RejectsInPlaceUpdate) {
  FlashChip chip(SmallGeometry());
  Bytes data = {1};
  ASSERT_TRUE(chip.ProgramPage(0, ByteView(data)).ok());
  Status s = chip.ProgramPage(0, ByteView(data));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(FlashChipTest, EraseEnablesReprogram) {
  FlashChip chip(SmallGeometry());
  Bytes data = {9};
  ASSERT_TRUE(chip.ProgramPage(0, ByteView(data)).ok());
  ASSERT_TRUE(chip.EraseBlock(0).ok());
  EXPECT_FALSE(chip.IsProgrammed(0));
  ASSERT_TRUE(chip.ProgramPage(0, ByteView(data)).ok());
  EXPECT_TRUE(chip.IsProgrammed(0));
}

TEST(FlashChipTest, EraseIsBlockGrained) {
  FlashChip chip(SmallGeometry());
  Bytes data = {7};
  // Program pages 0..3 (block 0) and 4 (block 1).
  for (uint32_t p = 0; p <= 4; ++p) {
    ASSERT_TRUE(chip.ProgramPage(p, ByteView(data)).ok());
  }
  ASSERT_TRUE(chip.EraseBlock(0).ok());
  for (uint32_t p = 0; p < 4; ++p) {
    EXPECT_FALSE(chip.IsProgrammed(p));
  }
  EXPECT_TRUE(chip.IsProgrammed(4));  // block 1 untouched
}

TEST(FlashChipTest, BoundsChecked) {
  FlashChip chip(SmallGeometry());
  Bytes page;
  EXPECT_EQ(chip.ReadPage(32, &page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(chip.ProgramPage(32, ByteView(page)).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(chip.EraseBlock(8).code(), StatusCode::kOutOfRange);
}

TEST(FlashChipTest, RejectsOversizedWrite) {
  FlashChip chip(SmallGeometry());
  Bytes data(257, 0);
  EXPECT_EQ(chip.ProgramPage(0, ByteView(data)).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlashChipTest, StatsCountOperations) {
  FlashChip chip(SmallGeometry());
  Bytes data = {1};
  Bytes page;
  ASSERT_TRUE(chip.ProgramPage(0, ByteView(data)).ok());
  ASSERT_TRUE(chip.ReadPage(0, &page).ok());
  ASSERT_TRUE(chip.ReadPage(1, &page).ok());
  ASSERT_TRUE(chip.EraseBlock(0).ok());
  EXPECT_EQ(chip.stats().page_programs, 1u);
  EXPECT_EQ(chip.stats().page_reads, 2u);
  EXPECT_EQ(chip.stats().block_erases, 1u);

  chip.ResetStats();
  EXPECT_EQ(chip.stats().page_reads, 0u);
}

TEST(FlashChipTest, StatsTimeModel) {
  Stats s;
  s.page_reads = 10;
  s.page_programs = 4;
  s.block_erases = 2;
  CostModel cost;  // 25 / 250 / 1500 us
  EXPECT_DOUBLE_EQ(s.TimeUs(cost), 10 * 25.0 + 4 * 250.0 + 2 * 1500.0);
}

TEST(FlashChipTest, StatsDifference) {
  Stats a{10, 5, 2}, b{4, 3, 1};
  Stats d = a - b;
  EXPECT_EQ(d.page_reads, 6u);
  EXPECT_EQ(d.page_programs, 2u);
  EXPECT_EQ(d.block_erases, 1u);
}

TEST(FlashStats, FieldCountGuard) {
  // Structured bindings of exactly this arity fail to compile when a field
  // is added to Stats — forcing whoever adds one to also update ResetStats,
  // operator-, ToString, the obs counters in flash.cc, and this test (the
  // static_assert in flash.h backs this up against padding/type drift).
  Stats s{7, 5, 3};
  auto& [reads, programs, erases] = s;
  EXPECT_EQ(reads, 7u);
  EXPECT_EQ(programs, 5u);
  EXPECT_EQ(erases, 3u);

  // operator- must cover every field.
  Stats d = Stats{10, 8, 6} - s;
  auto& [dr, dp, de] = d;
  EXPECT_EQ(dr, 3u);
  EXPECT_EQ(dp, 3u);
  EXPECT_EQ(de, 3u);

  // ToString must mention every field's value.
  std::string str = s.ToString();
  EXPECT_NE(str.find('7'), std::string::npos);
  EXPECT_NE(str.find('5'), std::string::npos);
  EXPECT_NE(str.find('3'), std::string::npos);
}

TEST(FlashChipTest, WearTracking) {
  FlashChip chip(SmallGeometry());
  ASSERT_TRUE(chip.EraseBlock(3).ok());
  ASSERT_TRUE(chip.EraseBlock(3).ok());
  ASSERT_TRUE(chip.EraseBlock(1).ok());
  EXPECT_EQ(chip.WearOf(3), 2u);
  EXPECT_EQ(chip.WearOf(1), 1u);
  EXPECT_EQ(chip.WearOf(0), 0u);
  EXPECT_EQ(chip.MaxWear(), 2u);
}

TEST(PartitionTest, LocalAddressing) {
  FlashChip chip(SmallGeometry());
  Partition part(&chip, /*first_block=*/2, /*num_blocks=*/2);
  EXPECT_EQ(part.num_pages(), 8u);

  Bytes data = {42};
  ASSERT_TRUE(part.ProgramPage(0, ByteView(data)).ok());
  // Local page 0 is chip page 8 (block 2 * 4 pages).
  EXPECT_TRUE(chip.IsProgrammed(8));
  EXPECT_FALSE(chip.IsProgrammed(0));

  Bytes page;
  ASSERT_TRUE(part.ReadPage(0, &page).ok());
  EXPECT_EQ(page[0], 42);
}

TEST(PartitionTest, BoundsWithinPartition) {
  FlashChip chip(SmallGeometry());
  Partition part(&chip, 2, 2);
  Bytes data = {1};
  EXPECT_EQ(part.ProgramPage(8, ByteView(data)).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(part.EraseBlock(2).code(), StatusCode::kOutOfRange);
}

TEST(PartitionTest, EraseAll) {
  FlashChip chip(SmallGeometry());
  Partition part(&chip, 1, 2);
  Bytes data = {1};
  for (uint32_t p = 0; p < part.num_pages(); ++p) {
    ASSERT_TRUE(part.ProgramPage(p, ByteView(data)).ok());
  }
  ASSERT_TRUE(part.EraseAll().ok());
  for (uint32_t p = 0; p < part.num_pages(); ++p) {
    ASSERT_TRUE(part.ProgramPage(p, ByteView(data)).ok());
  }
}

TEST(PartitionTest, DefaultInvalid) {
  Partition part;
  EXPECT_FALSE(part.valid());
  Bytes page;
  EXPECT_EQ(part.ReadPage(0, &page).code(), StatusCode::kFailedPrecondition);
}

TEST(PartitionAllocatorTest, DisjointAllocations) {
  FlashChip chip(SmallGeometry());
  PartitionAllocator alloc(&chip);

  auto p1 = alloc.Allocate(3);
  ASSERT_TRUE(p1.ok());
  auto p2 = alloc.Allocate(3);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(alloc.blocks_used(), 6u);
  EXPECT_EQ(alloc.blocks_free(), 2u);

  // Writing through p1 and p2 touches different chip pages.
  Bytes data = {1};
  ASSERT_TRUE(p1->ProgramPage(0, ByteView(data)).ok());
  ASSERT_TRUE(p2->ProgramPage(0, ByteView(data)).ok());
  EXPECT_TRUE(chip.IsProgrammed(0));
  EXPECT_TRUE(chip.IsProgrammed(12));
}

TEST(PartitionAllocatorTest, ExhaustsChip) {
  FlashChip chip(SmallGeometry());
  PartitionAllocator alloc(&chip);
  ASSERT_TRUE(alloc.Allocate(8).ok());
  EXPECT_EQ(alloc.Allocate(1).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PartitionAllocatorTest, RejectsZeroBlocks) {
  FlashChip chip(SmallGeometry());
  PartitionAllocator alloc(&chip);
  EXPECT_EQ(alloc.Allocate(0).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pds::flash
