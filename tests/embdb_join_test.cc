#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "embdb/database.h"
#include "embdb/executor.h"
#include "embdb/join_index.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"
#include "workloads/tpcd.h"

namespace pds::embdb {
namespace {

using workloads::LoadTpcd;
using workloads::TpcdConfig;
using workloads::TpcdInstance;
using workloads::TpcdNode;
using workloads::TutorialQuery;

flash::Geometry BigGeometry() {
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 4096;
  return g;
}

class JoinTest : public ::testing::Test {
 protected:
  JoinTest()
      : chip_(BigGeometry()),
        gauge_(256 * 1024),
        db_(&chip_, &gauge_) {
    TpcdConfig config;
    auto inst = LoadTpcd(&db_, config);
    EXPECT_TRUE(inst.ok()) << inst.status().ToString();
    inst_ = *inst;
  }

  /// Reference result computed with plain in-RAM evaluation.
  std::set<uint64_t> ReferenceRootRowids(const SpjQuery& query) {
    std::set<uint64_t> out;
    auto scanner = inst_.lineitem->NewScanner();
    uint64_t rowid = 0;
    Tuple tuple;
    std::vector<uint64_t> node_rowids;
    while (!scanner.AtEnd()) {
      EXPECT_TRUE(scanner.Next(&rowid, &tuple).ok());
      EXPECT_TRUE(inst_.path.ResolveRowids(tuple, &node_rowids).ok());
      bool pass = true;
      for (const auto& sel : query.selections) {
        Tuple t;
        if (sel.node < 0) {
          t = tuple;
        } else {
          auto fetched = inst_.path.nodes[sel.node].table->Get(
              node_rowids[sel.node]);
          EXPECT_TRUE(fetched.ok());
          t = *fetched;
        }
        if (Value::Compare(t[sel.column], sel.constant) != 0) {
          pass = false;
          break;
        }
      }
      if (pass) {
        out.insert(rowid);
      }
    }
    return out;
  }

  flash::FlashChip chip_;
  mcu::RamGauge gauge_;
  Database db_;
  TpcdInstance inst_;
};

TEST_F(JoinTest, ResolveRowidsFollowsBothBranches) {
  auto tuple = inst_.lineitem->Get(0);
  ASSERT_TRUE(tuple.ok());
  std::vector<uint64_t> node_rowids;
  ASSERT_TRUE(inst_.path.ResolveRowids(*tuple, &node_rowids).ok());
  ASSERT_EQ(node_rowids.size(), 4u);
  // orders rowid must equal the fk stored in the lineitem.
  EXPECT_EQ(node_rowids[TpcdNode::kOrders], (*tuple)[1].AsU64());
  EXPECT_EQ(node_rowids[TpcdNode::kPartsupp], (*tuple)[2].AsU64());
  // customer rowid must equal orders.cust_fk.
  auto order = inst_.orders->Get(node_rowids[TpcdNode::kOrders]);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(node_rowids[TpcdNode::kCustomer], (*order)[1].AsU64());
}

TEST_F(JoinTest, TjoinLookupMatchesResolution) {
  auto tjoin = TjoinIndex::Build(inst_.path, db_.allocator());
  ASSERT_TRUE(tjoin.ok()) << tjoin.status().ToString();
  EXPECT_EQ(tjoin->num_rows(), inst_.lineitem->num_rows());

  for (uint64_t rowid : {0ULL, 17ULL, 999ULL}) {
    std::vector<uint64_t> from_index, from_resolution;
    ASSERT_TRUE(tjoin->Lookup(rowid, &from_index).ok());
    auto tuple = inst_.lineitem->Get(rowid);
    ASSERT_TRUE(tuple.ok());
    ASSERT_TRUE(inst_.path.ResolveRowids(*tuple, &from_resolution).ok());
    EXPECT_EQ(from_index, from_resolution) << "rowid " << rowid;
  }
}

TEST_F(JoinTest, TjoinLookupIsConstantIo) {
  auto tjoin = TjoinIndex::Build(inst_.path, db_.allocator());
  ASSERT_TRUE(tjoin.ok());
  chip_.ResetStats();
  std::vector<uint64_t> rowids;
  ASSERT_TRUE(tjoin->Lookup(500, &rowids).ok());
  EXPECT_LE(chip_.stats().page_reads, 2u);
}

TEST_F(JoinTest, TjoinRejectsBadRowid) {
  auto tjoin = TjoinIndex::Build(inst_.path, db_.allocator());
  ASSERT_TRUE(tjoin.ok());
  std::vector<uint64_t> rowids;
  EXPECT_EQ(tjoin->Lookup(10000, &rowids).code(), StatusCode::kNotFound);
}

TEST_F(JoinTest, TselectReturnsSortedRootRowids) {
  auto tsel = TselectIndex::Build(inst_.path, TpcdNode::kCustomer,
                                  /*column=*/2, db_.allocator(), &gauge_);
  ASSERT_TRUE(tsel.ok()) << tsel.status().ToString();

  std::vector<uint64_t> rowids;
  ASSERT_TRUE(
      tsel->Lookup(Value::Str("HOUSEHOLD"), &rowids, nullptr).ok());
  EXPECT_FALSE(rowids.empty());
  EXPECT_TRUE(std::is_sorted(rowids.begin(), rowids.end()));

  // Every returned lineitem's customer really is in HOUSEHOLD.
  std::vector<uint64_t> node_rowids;
  for (uint64_t r : rowids) {
    auto tuple = inst_.lineitem->Get(r);
    ASSERT_TRUE(tuple.ok());
    ASSERT_TRUE(inst_.path.ResolveRowids(*tuple, &node_rowids).ok());
    auto cust = inst_.customer->Get(node_rowids[TpcdNode::kCustomer]);
    ASSERT_TRUE(cust.ok());
    EXPECT_EQ((*cust)[2].AsStr(), "HOUSEHOLD");
  }
}

TEST_F(JoinTest, TselectOnRootColumn) {
  auto tsel = TselectIndex::Build(inst_.path, /*node=*/-1, /*column=*/3,
                                  db_.allocator(), &gauge_);
  ASSERT_TRUE(tsel.ok());
  std::vector<uint64_t> rowids;
  ASSERT_TRUE(tsel->Lookup(Value::U64(10), &rowids, nullptr).ok());
  for (uint64_t r : rowids) {
    auto tuple = inst_.lineitem->Get(r);
    ASSERT_TRUE(tuple.ok());
    EXPECT_EQ((*tuple)[3].AsU64(), 10u);
  }
}

TEST_F(JoinTest, IntersectSorted) {
  EXPECT_EQ(IntersectSorted({{1, 3, 5, 7}, {3, 4, 5, 8}}),
            (std::vector<uint64_t>{3, 5}));
  EXPECT_EQ(IntersectSorted({{1, 2}, {3, 4}}), (std::vector<uint64_t>{}));
  EXPECT_EQ(IntersectSorted({{1, 2, 3}}), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(IntersectSorted({}).empty());
  EXPECT_EQ(IntersectSorted({{1, 5, 9}, {1, 5, 9}, {5, 9}}),
            (std::vector<uint64_t>{5, 9}));
}

TEST_F(JoinTest, SpjPipelineMatchesReference) {
  SpjQuery query = TutorialQuery(/*segment=*/0, /*supplier=*/1);
  std::set<uint64_t> expected = ReferenceRootRowids(query);

  auto tjoin = TjoinIndex::Build(inst_.path, db_.allocator());
  ASSERT_TRUE(tjoin.ok());
  auto tsel_cust = TselectIndex::Build(inst_.path, TpcdNode::kCustomer, 2,
                                       db_.allocator(), &gauge_);
  auto tsel_supp = TselectIndex::Build(inst_.path, TpcdNode::kSupplier, 1,
                                       db_.allocator(), &gauge_);
  ASSERT_TRUE(tsel_cust.ok());
  ASSERT_TRUE(tsel_supp.ok());

  SpjExecutor executor(inst_.path, &tjoin.value(),
                       {&tsel_cust.value(), &tsel_supp.value()}, &gauge_);
  SpjStats stats;
  std::vector<Tuple> rows;
  ASSERT_TRUE(executor
                  .Execute(query,
                           [&](const Tuple& row) {
                             rows.push_back(row);
                             return Status::Ok();
                           },
                           &stats)
                  .ok());
  EXPECT_EQ(rows.size(), expected.size());
  EXPECT_EQ(stats.result_rows, expected.size());
  // Projections: every row names SUPPLIER-1.
  for (const Tuple& row : rows) {
    ASSERT_EQ(row.size(), 5u);
    EXPECT_EQ(row[4].AsStr(), "SUPPLIER-1");
  }
}

TEST_F(JoinTest, SpjPipelineMatchesNaiveBaseline) {
  SpjQuery query = TutorialQuery(0, 2);

  auto tjoin = TjoinIndex::Build(inst_.path, db_.allocator());
  auto tsel_cust = TselectIndex::Build(inst_.path, TpcdNode::kCustomer, 2,
                                       db_.allocator(), &gauge_);
  auto tsel_supp = TselectIndex::Build(inst_.path, TpcdNode::kSupplier, 1,
                                       db_.allocator(), &gauge_);
  ASSERT_TRUE(tjoin.ok());
  ASSERT_TRUE(tsel_cust.ok());
  ASSERT_TRUE(tsel_supp.ok());

  SpjExecutor pipeline(inst_.path, &tjoin.value(),
                       {&tsel_cust.value(), &tsel_supp.value()}, &gauge_);
  NaiveHashJoinSpj naive(inst_.path, &gauge_);

  std::multiset<std::string> pipeline_rows, naive_rows;
  auto collect = [](std::multiset<std::string>* out) {
    return [out](const Tuple& row) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString() + "|";
      }
      out->insert(s);
      return Status::Ok();
    };
  };
  SpjStats s1, s2;
  ASSERT_TRUE(pipeline.Execute(query, collect(&pipeline_rows), &s1).ok());
  ASSERT_TRUE(naive.Execute(query, collect(&naive_rows), &s2).ok());
  EXPECT_EQ(pipeline_rows, naive_rows);
  EXPECT_FALSE(pipeline_rows.empty());
}

TEST_F(JoinTest, PipelineRamBoundedNaiveFailsUnderTightBudget) {
  auto tjoin = TjoinIndex::Build(inst_.path, db_.allocator());
  auto tsel_cust = TselectIndex::Build(inst_.path, TpcdNode::kCustomer, 2,
                                       db_.allocator(), &gauge_);
  auto tsel_supp = TselectIndex::Build(inst_.path, TpcdNode::kSupplier, 1,
                                       db_.allocator(), &gauge_);
  ASSERT_TRUE(tjoin.ok());
  ASSERT_TRUE(tsel_cust.ok());
  ASSERT_TRUE(tsel_supp.ok());

  mcu::RamGauge tight(8 * 1024);
  SpjQuery query = TutorialQuery(0, 1);

  SpjExecutor pipeline(inst_.path, &tjoin.value(),
                       {&tsel_cust.value(), &tsel_supp.value()}, &tight);
  SpjStats stats;
  Status s = pipeline.Execute(
      query, [](const Tuple&) { return Status::Ok(); }, &stats);
  EXPECT_TRUE(s.ok()) << s.ToString();

  NaiveHashJoinSpj naive(inst_.path, &tight);
  Status ns = naive.Execute(
      query, [](const Tuple&) { return Status::Ok(); }, &stats);
  EXPECT_EQ(ns.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tight.in_use(), 0u);  // no leak on failure
}

TEST_F(JoinTest, AggregatorFunctions) {
  mcu::RamGauge gauge(64 * 1024);
  {
    Aggregator agg(Aggregator::Func::kSum, &gauge);
    ASSERT_TRUE(agg.Add(Value::Str("a"), 1.5).ok());
    ASSERT_TRUE(agg.Add(Value::Str("a"), 2.5).ok());
    ASSERT_TRUE(agg.Add(Value::Str("b"), 10).ok());
    auto groups = agg.Finish();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].group.AsStr(), "a");
    EXPECT_DOUBLE_EQ(groups[0].value, 4.0);
    EXPECT_DOUBLE_EQ(groups[1].value, 10.0);
  }
  {
    Aggregator agg(Aggregator::Func::kAvg, &gauge);
    ASSERT_TRUE(agg.Add(Value::U64(1), 10).ok());
    ASSERT_TRUE(agg.Add(Value::U64(1), 20).ok());
    auto groups = agg.Finish();
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_DOUBLE_EQ(groups[0].value, 15.0);
    EXPECT_EQ(groups[0].count, 2u);
  }
  {
    Aggregator agg(Aggregator::Func::kMin, &gauge);
    ASSERT_TRUE(agg.Add(Value::U64(1), 5).ok());
    ASSERT_TRUE(agg.Add(Value::U64(1), -3).ok());
    ASSERT_TRUE(agg.Add(Value::U64(1), 7).ok());
    EXPECT_DOUBLE_EQ(agg.Finish()[0].value, -3.0);
  }
  {
    Aggregator agg(Aggregator::Func::kMax, &gauge);
    ASSERT_TRUE(agg.Add(Value::U64(1), 5).ok());
    ASSERT_TRUE(agg.Add(Value::U64(1), 7).ok());
    EXPECT_DOUBLE_EQ(agg.Finish()[0].value, 7.0);
  }
  {
    Aggregator agg(Aggregator::Func::kCount, &gauge);
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE(agg.Add(Value::U64(static_cast<uint64_t>(i % 3)), 0).ok());
    }
    auto groups = agg.Finish();
    ASSERT_EQ(groups.size(), 3u);
    for (auto& g : groups) {
      EXPECT_DOUBLE_EQ(g.value, 3.0);
    }
  }
  EXPECT_EQ(gauge.in_use(), 0u);
}

TEST_F(JoinTest, AggregatorRespectsRamBudget) {
  mcu::RamGauge tiny(1024);
  Aggregator agg(Aggregator::Func::kCount, &tiny);
  Status status = Status::Ok();
  int groups_added = 0;
  for (int i = 0; i < 100 && status.ok(); ++i) {
    status = agg.Add(Value::U64(static_cast<uint64_t>(i)), 1);
    if (status.ok()) {
      ++groups_added;
    }
  }
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_LT(groups_added, 100);
}

TEST_F(JoinTest, PredicateOps) {
  Tuple t = {Value::U64(5), Value::Str("lyon")};
  auto pred = [&](int col, Predicate::Op op, Value v) {
    Predicate p;
    p.column = col;
    p.op = op;
    p.constant = std::move(v);
    return p.Eval(t);
  };
  EXPECT_TRUE(pred(0, Predicate::Op::kEq, Value::U64(5)));
  EXPECT_FALSE(pred(0, Predicate::Op::kEq, Value::U64(6)));
  EXPECT_TRUE(pred(0, Predicate::Op::kNe, Value::U64(6)));
  EXPECT_TRUE(pred(0, Predicate::Op::kLt, Value::U64(6)));
  EXPECT_TRUE(pred(0, Predicate::Op::kLe, Value::U64(5)));
  EXPECT_TRUE(pred(0, Predicate::Op::kGt, Value::U64(4)));
  EXPECT_TRUE(pred(0, Predicate::Op::kGe, Value::U64(5)));
  EXPECT_TRUE(pred(1, Predicate::Op::kEq, Value::Str("lyon")));
}

}  // namespace
}  // namespace pds::embdb
