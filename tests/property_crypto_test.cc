// Property tests for the crypto substrate: cipher round trips across
// message lengths and keys, SHA-256 incremental/one-shot agreement across
// chunkings, and BigInt arithmetic against native 64-bit references.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.h"
#include "crypto/bigint.h"
#include "crypto/cipher.h"
#include "crypto/paillier.h"
#include "crypto/sha256.h"
#include "crypto/sra.h"

namespace pds::crypto {
namespace {

// (message_length, key_seed)
using CipherParam = std::tuple<size_t, int>;

class CipherProperty : public ::testing::TestWithParam<CipherParam> {};

TEST_P(CipherProperty, DetAndNonDetRoundTrip) {
  auto [len, key_seed] = GetParam();
  SymmetricKey key = KeyFromString("key-" + std::to_string(key_seed));
  DetCipher det(key);
  NonDetCipher nondet(key);
  Rng rng(len * 131 + key_seed);

  Bytes plaintext(len);
  rng.FillBytes(plaintext.data(), plaintext.size());

  // Deterministic: round trip + equality of repeated encryptions.
  Bytes ct1 = det.Encrypt(ByteView(plaintext));
  Bytes ct2 = det.Encrypt(ByteView(plaintext));
  EXPECT_EQ(ct1, ct2);
  auto back = det.Decrypt(ByteView(ct1));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, plaintext);

  // Non-deterministic: round trip + inequality of repeated encryptions.
  Bytes nct1 = nondet.Encrypt(ByteView(plaintext), &rng);
  Bytes nct2 = nondet.Encrypt(ByteView(plaintext), &rng);
  if (len > 0) {
    EXPECT_NE(nct1, nct2);
  }
  auto nback = nondet.Decrypt(ByteView(nct1));
  ASSERT_TRUE(nback.ok());
  EXPECT_EQ(*nback, plaintext);

  // Any single-bit flip is detected, wherever it lands.
  for (size_t victim : {size_t{0}, ct1.size() / 2, ct1.size() - 1}) {
    Bytes corrupted = ct1;
    corrupted[victim] ^= 0x40;
    EXPECT_FALSE(det.Decrypt(ByteView(corrupted)).ok())
        << "det byte " << victim;
  }
  for (size_t victim : {size_t{0}, nct1.size() / 2, nct1.size() - 1}) {
    Bytes corrupted = nct1;
    corrupted[victim] ^= 0x40;
    EXPECT_FALSE(nondet.Decrypt(ByteView(corrupted)).ok())
        << "nondet byte " << victim;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndKeys, CipherProperty,
    ::testing::Combine(::testing::Values(1, 15, 16, 17, 64, 1000, 4096),
                       ::testing::Values(1, 2)));

class ShaChunkingProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ShaChunkingProperty, IncrementalEqualsOneShot) {
  size_t chunk = GetParam();
  Rng rng(chunk);
  for (size_t total : {size_t{0}, size_t{55}, size_t{56}, size_t{64},
                       size_t{65}, size_t{1000}}) {
    Bytes message(total);
    rng.FillBytes(message.data(), message.size());
    Sha256 h;
    for (size_t pos = 0; pos < total; pos += chunk) {
      size_t take = std::min(chunk, total - pos);
      h.Update(ByteView(message.data() + pos, take));
    }
    EXPECT_EQ(h.Finish(), Sha256::Hash(ByteView(message)))
        << "total " << total << " chunk " << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(Chunks, ShaChunkingProperty,
                         ::testing::Values(1, 3, 63, 64, 65, 128, 1024));

class BigIntU64Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntU64Property, ArithmeticMatchesNative) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    // Operands bounded so products and sums fit in 64 bits.
    uint64_t a = rng.Next() >> 33;
    uint64_t b = (rng.Next() >> 33) | 1;  // nonzero divisor
    EXPECT_EQ(BigInt::Add(BigInt(a), BigInt(b)).ToU64(), a + b);
    EXPECT_EQ(BigInt::Mul(BigInt(a), BigInt(b)).ToU64(), a * b);
    if (a >= b) {
      EXPECT_EQ(BigInt::Sub(BigInt(a), BigInt(b)).ToU64(), a - b);
    }
    BigInt q, r;
    BigInt::DivMod(BigInt(a), BigInt(b), &q, &r);
    EXPECT_EQ(q.ToU64(), a / b);
    EXPECT_EQ(r.ToU64(), a % b);
    EXPECT_EQ(BigInt::Gcd(BigInt(a), BigInt(b)).ToU64(), std::__gcd(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntU64Property,
                         ::testing::Values(1, 2, 3, 4, 5));

class PaillierSizeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(PaillierSizeProperty, HomomorphismAcrossKeySizes) {
  size_t bits = GetParam();
  Rng rng(bits);
  auto paillier = Paillier::Generate(bits, &rng);
  ASSERT_TRUE(paillier.ok());
  for (int i = 0; i < 10; ++i) {
    uint64_t a = rng.Uniform(1 << 20);
    uint64_t b = rng.Uniform(1 << 20);
    uint64_t k = rng.Uniform(16);
    auto ca = paillier->EncryptU64(a, &rng);
    auto cb = paillier->EncryptU64(b, &rng);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    auto sum = paillier->DecryptU64(paillier->AddCiphertexts(*ca, *cb));
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(*sum, a + b);
    auto scaled = paillier->DecryptU64(
        paillier->MulPlaintext(*ca, BigInt(k)));
    ASSERT_TRUE(scaled.ok());
    EXPECT_EQ(*scaled, a * k);
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, PaillierSizeProperty,
                         ::testing::Values(128, 256, 512));

class SraProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(SraProperty, MultiPartyCommutativityAnyOrder) {
  size_t prime_bits = GetParam();
  Rng rng(prime_bits);
  BigInt p = SraCipher::GeneratePrime(prime_bits, &rng);
  std::vector<SraCipher> ciphers;
  for (int i = 0; i < 3; ++i) {
    auto c = SraCipher::Create(p, &rng);
    ASSERT_TRUE(c.ok());
    ciphers.push_back(std::move(c).value());
  }
  auto x = ciphers[0].EncodeItem("multi");  // short enough for 64-bit primes
  ASSERT_TRUE(x.ok());

  // Encrypt in the 6 possible orders: all agree.
  std::vector<std::vector<int>> orders = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                          {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  std::vector<BigInt> results;
  for (const auto& order : orders) {
    BigInt v = *x;
    for (int idx : order) {
      auto e = ciphers[idx].Encrypt(v);
      ASSERT_TRUE(e.ok());
      v = *e;
    }
    results.push_back(v);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "order " << i;
  }

  // Decrypt in a different order than encryption.
  BigInt v = results[0];
  for (int idx : {1, 2, 0}) {
    auto d = ciphers[idx].Decrypt(v);
    ASSERT_TRUE(d.ok());
    v = *d;
  }
  auto item = ciphers[0].DecodeItem(v);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(*item, "multi");
}

INSTANTIATE_TEST_SUITE_P(PrimeSizes, SraProperty,
                         ::testing::Values(64, 128, 256));

}  // namespace
}  // namespace pds::crypto
