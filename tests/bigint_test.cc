#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bigint.h"

namespace pds::crypto {
namespace {

TEST(BigIntTest, ZeroAndOne) {
  EXPECT_TRUE(BigInt::Zero().IsZero());
  EXPECT_TRUE(BigInt::One().IsOne());
  EXPECT_FALSE(BigInt::Zero().IsOne());
  EXPECT_EQ(BigInt(0), BigInt::Zero());
  EXPECT_EQ(BigInt::Zero().BitLength(), 0u);
  EXPECT_EQ(BigInt::One().BitLength(), 1u);
}

TEST(BigIntTest, U64RoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 0xFFFFFFFFULL, 0x100000000ULL,
                     0xFFFFFFFFFFFFFFFFULL, 1234567890123456789ULL}) {
    EXPECT_EQ(BigInt(v).ToU64(), v);
  }
}

TEST(BigIntTest, BytesRoundTrip) {
  Bytes b = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  BigInt v = BigInt::FromBytes(ByteView(b));
  EXPECT_EQ(v.ToBytes(), b);
}

TEST(BigIntTest, BytesLeadingZerosStripped) {
  Bytes b = {0x00, 0x00, 0x01, 0x02};
  BigInt v = BigInt::FromBytes(ByteView(b));
  Bytes expected = {0x01, 0x02};
  EXPECT_EQ(v.ToBytes(), expected);
}

TEST(BigIntTest, CompareOrdering) {
  BigInt a(5), b(7), c(5);
  EXPECT_LT(BigInt::Compare(a, b), 0);
  EXPECT_GT(BigInt::Compare(b, a), 0);
  EXPECT_EQ(BigInt::Compare(a, c), 0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= c);
  EXPECT_TRUE(a >= c);
}

TEST(BigIntTest, AddWithCarryChain) {
  BigInt a(0xFFFFFFFFFFFFFFFFULL);
  BigInt sum = BigInt::Add(a, BigInt::One());
  EXPECT_EQ(sum.BitLength(), 65u);
  EXPECT_EQ(BigInt::Sub(sum, BigInt::One()), a);
}

TEST(BigIntTest, SubBasics) {
  EXPECT_EQ(BigInt::Sub(BigInt(100), BigInt(58)).ToU64(), 42u);
  EXPECT_TRUE(BigInt::Sub(BigInt(5), BigInt(5)).IsZero());
}

TEST(BigIntTest, MulMatchesU64) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Next() >> 33;  // keep products within 64 bits
    uint64_t b = rng.Next() >> 33;
    EXPECT_EQ(BigInt::Mul(BigInt(a), BigInt(b)).ToU64(), a * b);
  }
}

TEST(BigIntTest, MulLargeAssociativeCommutative) {
  Rng rng(6);
  BigInt a = BigInt::RandomBits(200, &rng);
  BigInt b = BigInt::RandomBits(150, &rng);
  BigInt c = BigInt::RandomBits(100, &rng);
  EXPECT_EQ(BigInt::Mul(a, b), BigInt::Mul(b, a));
  EXPECT_EQ(BigInt::Mul(BigInt::Mul(a, b), c),
            BigInt::Mul(a, BigInt::Mul(b, c)));
}

TEST(BigIntTest, ShiftRoundTrip) {
  Rng rng(7);
  BigInt a = BigInt::RandomBits(130, &rng);
  for (size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(BigInt::ShiftRight(BigInt::ShiftLeft(a, s), s), a);
  }
}

TEST(BigIntTest, DivModSmall) {
  BigInt q, r;
  BigInt::DivMod(BigInt(100), BigInt(7), &q, &r);
  EXPECT_EQ(q.ToU64(), 14u);
  EXPECT_EQ(r.ToU64(), 2u);
}

TEST(BigIntTest, DivModInvariantRandom) {
  // Property: a = q*b + r with r < b, across sizes that exercise both the
  // single-limb fast path and Knuth algorithm D.
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    size_t abits = 1 + rng.Uniform(300);
    size_t bbits = 1 + rng.Uniform(200);
    BigInt a = BigInt::RandomBits(abits, &rng);
    BigInt b = BigInt::RandomBits(bbits, &rng);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_LT(BigInt::Compare(r, b), 0);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), r), a);
  }
}

TEST(BigIntTest, DivModByLargerYieldsZeroQuotient) {
  BigInt q, r;
  BigInt::DivMod(BigInt(5), BigInt(100), &q, &r);
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r.ToU64(), 5u);
}

TEST(BigIntTest, ModExpSmallKnownValues) {
  // 3^4 mod 5 = 81 mod 5 = 1
  EXPECT_EQ(BigInt::ModExp(BigInt(3), BigInt(4), BigInt(5)).ToU64(), 1u);
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigInt::ModExp(BigInt(2), BigInt(10), BigInt(1000)).ToU64(), 24u);
  // a^0 = 1
  EXPECT_EQ(BigInt::ModExp(BigInt(12345), BigInt::Zero(), BigInt(997)).ToU64(),
            1u);
}

TEST(BigIntTest, ModExpFermat) {
  // Fermat's little theorem: a^(p-1) = 1 mod p for prime p, gcd(a,p)=1.
  BigInt p(1000000007ULL);
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::Add(BigInt::RandomBelow(BigInt(1000000005ULL), &rng),
                           BigInt::One());
    EXPECT_TRUE(
        BigInt::ModExp(a, BigInt::Sub(p, BigInt::One()), p).IsOne());
  }
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToU64(), 6u);
  EXPECT_EQ(BigInt::Lcm(BigInt(4), BigInt(6)).ToU64(), 12u);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToU64(), 1u);
  EXPECT_TRUE(BigInt::Gcd(BigInt::Zero(), BigInt(5)).ToU64() == 5u);
}

TEST(BigIntTest, ModInverseSmall) {
  // 3 * 4 = 12 = 1 mod 11.
  EXPECT_EQ(BigInt::ModInverse(BigInt(3), BigInt(11)).ToU64(), 4u);
  // Non-invertible: gcd(6, 9) = 3.
  EXPECT_TRUE(BigInt::ModInverse(BigInt(6), BigInt(9)).IsZero());
}

TEST(BigIntTest, ModInverseRandomProperty) {
  Rng rng(10);
  BigInt p(1000000007ULL);  // prime modulus -> everything invertible
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::Add(BigInt::RandomBelow(BigInt(1000000006ULL), &rng),
                           BigInt::One());
    BigInt inv = BigInt::ModInverse(a, p);
    ASSERT_FALSE(inv.IsZero());
    EXPECT_TRUE(BigInt::ModMul(a, inv, p).IsOne());
  }
}

TEST(BigIntTest, ModInverseLarge) {
  Rng rng(11);
  BigInt p = BigInt::GeneratePrime(128, &rng);
  BigInt a = BigInt::RandomBits(100, &rng);
  BigInt inv = BigInt::ModInverse(a, p);
  ASSERT_FALSE(inv.IsZero());
  EXPECT_TRUE(BigInt::ModMul(a, inv, p).IsOne());
}

TEST(BigIntTest, RandomBitsExactLength) {
  Rng rng(12);
  for (size_t bits : {1u, 7u, 32u, 33u, 64u, 127u, 256u}) {
    BigInt v = BigInt::RandomBits(bits, &rng);
    EXPECT_EQ(v.BitLength(), bits);
  }
}

TEST(BigIntTest, RandomBelowInRange) {
  Rng rng(13);
  BigInt bound = BigInt::RandomBits(100, &rng);
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::RandomBelow(bound, &rng);
    EXPECT_LT(BigInt::Compare(v, bound), 0);
  }
}

TEST(BigIntTest, PrimalityKnownPrimes) {
  Rng rng(14);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 65537ULL, 1000000007ULL}) {
    EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(p), 20, &rng)) << p;
  }
}

TEST(BigIntTest, PrimalityKnownComposites) {
  Rng rng(15);
  for (uint64_t c : {1ULL, 4ULL, 100ULL, 65536ULL, 1000000006ULL,
                     561ULL /* Carmichael */, 41041ULL /* Carmichael */}) {
    EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(c), 20, &rng)) << c;
  }
}

TEST(BigIntTest, GeneratePrimeHasRequestedBits) {
  Rng rng(16);
  BigInt p = BigInt::GeneratePrime(96, &rng);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(BigInt::IsProbablePrime(p, 30, &rng));
}

TEST(BigIntTest, DecimalString) {
  EXPECT_EQ(BigInt::Zero().ToDecimalString(), "0");
  EXPECT_EQ(BigInt(1234567890123456789ULL).ToDecimalString(),
            "1234567890123456789");
  // 2^64 = 18446744073709551616
  BigInt v = BigInt::Add(BigInt(0xFFFFFFFFFFFFFFFFULL), BigInt::One());
  EXPECT_EQ(v.ToDecimalString(), "18446744073709551616");
}

TEST(BigIntTest, ModAddSubConsistency) {
  Rng rng(17);
  BigInt m = BigInt::RandomBits(120, &rng);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomBelow(m, &rng);
    BigInt b = BigInt::RandomBelow(m, &rng);
    BigInt sum = BigInt::ModAdd(a, b, m);
    EXPECT_EQ(BigInt::ModSub(sum, b, m), a);
  }
}

}  // namespace
}  // namespace pds::crypto
