// Edge-case and randomized cross-check tests for the Montgomery kernel
// layer under BigInt::ModExp (crypto/montgomery.h). The schoolbook ladder
// is the reference implementation; the kernel must agree with it bit for
// bit on every input, including the limb-boundary carry chains that 32-bit
// limb arithmetic is most likely to get wrong.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bigint.h"
#include "crypto/montgomery.h"

namespace pds::crypto {
namespace {

BigInt FromDecimal(const std::string& s) {
  BigInt x;
  for (char c : s) {
    x = BigInt::Add(BigInt::Mul(x, BigInt(10)),
                    BigInt(static_cast<uint64_t>(c - '0')));
  }
  return x;
}

TEST(MontgomeryCtxTest, UsableGate) {
  EXPECT_FALSE(MontgomeryCtx::Usable(BigInt::Zero()));
  EXPECT_FALSE(MontgomeryCtx::Usable(BigInt::One()));
  EXPECT_FALSE(MontgomeryCtx::Usable(BigInt(2)));
  EXPECT_FALSE(MontgomeryCtx::Usable(BigInt(4)));
  EXPECT_TRUE(MontgomeryCtx::Usable(BigInt(3)));
  EXPECT_TRUE(MontgomeryCtx::Usable(BigInt(0xFFFFFFFFull)));
}

TEST(MontgomeryCtxTest, ZeroAndOneOperands) {
  MontgomeryCtx ctx(BigInt(101));
  EXPECT_EQ(ctx.ModMul(BigInt::Zero(), BigInt(57)), BigInt::Zero());
  EXPECT_EQ(ctx.ModMul(BigInt(57), BigInt::Zero()), BigInt::Zero());
  EXPECT_EQ(ctx.ModMul(BigInt::One(), BigInt(57)), BigInt(57));
  EXPECT_EQ(ctx.ModMul(BigInt(57), BigInt::One()), BigInt(57));
  // a^0 = 1, 0^e = 0, 1^e = 1, a^1 = a.
  EXPECT_EQ(ctx.ModExp(BigInt(57), BigInt::Zero()), BigInt::One());
  EXPECT_EQ(ctx.ModExp(BigInt::Zero(), BigInt(12)), BigInt::Zero());
  EXPECT_EQ(ctx.ModExp(BigInt::One(), BigInt(12)), BigInt::One());
  EXPECT_EQ(ctx.ModExp(BigInt(57), BigInt::One()), BigInt(57));
  // 0^0 = 1 by the ladder's convention (matches schoolbook).
  EXPECT_EQ(ctx.ModExp(BigInt::Zero(), BigInt::Zero()),
            BigInt::ModExpSchoolbook(BigInt::Zero(), BigInt::Zero(),
                                     BigInt(101)));
}

TEST(MontgomeryCtxTest, OperandsLargerThanModulusAreReduced) {
  MontgomeryCtx ctx(BigInt(97));
  BigInt big = FromDecimal("123456789123456789123456789");
  EXPECT_EQ(ctx.ModMul(big, big),
            BigInt::ModMul(BigInt::Mod(big, BigInt(97)),
                           BigInt::Mod(big, BigInt(97)), BigInt(97)));
  EXPECT_EQ(ctx.ModExp(big, BigInt(65537)),
            BigInt::ModExpSchoolbook(big, BigInt(65537), BigInt(97)));
}

TEST(MontgomeryCtxTest, LimbBoundaryCarryChains) {
  // Moduli and operands sitting right at 32/64/96-bit limb boundaries,
  // where the CIOS inner-loop carries propagate across every word.
  std::vector<BigInt> moduli = {
      BigInt(0xFFFFFFFFull),          // 2^32 - 1
      BigInt(0x100000001ull),         // 2^32 + 1
      BigInt(0xFFFFFFFFFFFFFFFFull),  // 2^64 - 1
      BigInt::Add(BigInt::ShiftLeft(BigInt::One(), 96), BigInt(0x2B)),
      BigInt::Sub(BigInt::ShiftLeft(BigInt::One(), 127), BigInt::One()),
  };
  for (const BigInt& m : moduli) {
    ASSERT_TRUE(MontgomeryCtx::Usable(m)) << m.ToDecimalString();
    MontgomeryCtx ctx(m);
    std::vector<BigInt> operands = {
        BigInt::Zero(), BigInt::One(), BigInt(0xFFFFFFFFull),
        BigInt::Sub(m, BigInt::One()),
        BigInt::Mod(BigInt(0xDEADBEEFCAFEBABEull), m)};
    for (const BigInt& a : operands) {
      for (const BigInt& b : operands) {
        EXPECT_EQ(ctx.ModMul(a, b), BigInt::ModMul(a, b, m))
            << "m=" << m.ToDecimalString() << " a=" << a.ToDecimalString()
            << " b=" << b.ToDecimalString();
      }
      EXPECT_EQ(ctx.ModExp(a, BigInt(0x10001)),
                BigInt::ModExpSchoolbook(a, BigInt(0x10001), m))
          << "m=" << m.ToDecimalString() << " a=" << a.ToDecimalString();
    }
  }
}

TEST(MontgomeryCtxTest, ToMontFromMontRoundTrip) {
  Rng rng(11);
  BigInt m = BigInt::GeneratePrime(160, &rng);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 50; ++i) {
    BigInt x = BigInt::RandomBelow(m, &rng);
    EXPECT_EQ(ctx.FromMont(ctx.ToMont(x)), x);
  }
  EXPECT_EQ(ctx.FromMont(ctx.OneMont()), BigInt::One());
}

TEST(BigIntModExpTest, EvenModulusFallsBackToSchoolbook) {
  // Montgomery requires an odd modulus; ModExp must still be correct for
  // even ones via the schoolbook path.
  std::vector<BigInt> moduli = {BigInt(2), BigInt(4096),
                                BigInt(0x100000000ull),
                                BigInt(2 * 3 * 5 * 7 * 11 * 13)};
  Rng rng(5);
  for (const BigInt& m : moduli) {
    for (int i = 0; i < 20; ++i) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      BigInt e(rng.Uniform(1000));
      EXPECT_EQ(BigInt::ModExp(a, e, m), BigInt::ModExpSchoolbook(a, e, m))
          << "m=" << m.ToDecimalString();
    }
  }
}

TEST(BigIntModExpTest, RandomizedMontgomeryVsSchoolbookCrossCheck) {
  // Seeded randomized sweep: 1000 (modulus, a, b, e) draws across limb
  // counts 1..16, each checked ModMul and ModExp against the schoolbook
  // reference. Any kernel carry bug shows up here with a reproducible seed.
  Rng rng(20260805);
  for (int iter = 0; iter < 1000; ++iter) {
    size_t bits = 8 + rng.Uniform(504);  // 8..511-bit moduli
    BigInt m = BigInt::RandomBits(bits, &rng);
    if (!m.IsOdd()) {
      m = BigInt::Add(m, BigInt::One());
    }
    if (!MontgomeryCtx::Usable(m)) {
      continue;
    }
    MontgomeryCtx ctx(m);
    BigInt a = BigInt::RandomBelow(m, &rng);
    BigInt b = BigInt::RandomBelow(m, &rng);
    ASSERT_EQ(ctx.ModMul(a, b), BigInt::ModMul(a, b, m))
        << "iter=" << iter << " m=" << m.ToDecimalString();
    BigInt e = BigInt::RandomBits(1 + rng.Uniform(96), &rng);
    ASSERT_EQ(ctx.ModExp(a, e), BigInt::ModExpSchoolbook(a, e, m))
        << "iter=" << iter << " m=" << m.ToDecimalString();
  }
}

TEST(FixedBaseTableTest, MatchesModExpAcrossExponentRange) {
  Rng rng(77);
  BigInt m = BigInt::GeneratePrime(192, &rng);
  MontgomeryCtx ctx(m);
  BigInt g = BigInt::RandomBelow(m, &rng);
  FixedBaseTable table(&ctx, g, /*max_exp_bits=*/128);

  // Edge exponents: 0, 1, single-digit, digit boundaries, max width.
  std::vector<BigInt> exps = {
      BigInt::Zero(), BigInt::One(), BigInt(15), BigInt(16), BigInt(255),
      BigInt(256), BigInt(0xFFFFFFFFull),
      BigInt::Sub(BigInt::ShiftLeft(BigInt::One(), 128), BigInt::One())};
  for (int i = 0; i < 100; ++i) {
    exps.push_back(BigInt::RandomBits(1 + rng.Uniform(128), &rng));
  }
  for (const BigInt& e : exps) {
    EXPECT_EQ(table.Pow(e), ctx.ModExp(g, e)) << "e=" << e.ToDecimalString();
  }
}

TEST(FixedBaseTableTest, PowMontComposesWithMontMul) {
  Rng rng(78);
  BigInt m = BigInt::GeneratePrime(128, &rng);
  MontgomeryCtx ctx(m);
  BigInt g = BigInt::RandomBelow(m, &rng);
  FixedBaseTable table(&ctx, g, 64);

  // g^a * g^b computed in the Montgomery domain equals g^(a+b).
  BigInt a(123456789), b(987654321);
  MontgomeryCtx::Limbs prod = table.PowMont(a);
  MontgomeryCtx::Limbs gb = table.PowMont(b);
  ctx.MontMul(prod, gb, &prod);
  EXPECT_EQ(ctx.FromMont(prod), ctx.ModExp(g, BigInt::Add(a, b)));
}

}  // namespace
}  // namespace pds::crypto
