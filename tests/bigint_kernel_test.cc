// Edge-case and randomized cross-check tests for the Montgomery kernel
// layer under BigInt::ModExp (crypto/montgomery.h). The schoolbook ladder
// is the reference implementation; the kernel must agree with it bit for
// bit on every input, including the limb-boundary carry chains that 32-bit
// limb arithmetic is most likely to get wrong.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bigint.h"
#include "crypto/montgomery.h"
#include "crypto/montgomery_simd.h"

namespace pds::crypto {
namespace {

/// Runs `fn` once on the active kernel and once with the scalar fallback
/// forced, restoring the dispatch state afterwards. Cross-check tests use
/// it so every assertion covers both the AVX2 and the scalar path.
template <typename Fn>
void ForEachKernel(Fn fn) {
  const bool was_forced = simd::force_scalar();
  simd::SetForceScalar(false);
  fn(simd::KernelName());
  simd::SetForceScalar(true);
  fn("forced-scalar");
  simd::SetForceScalar(was_forced);
}

BigInt FromDecimal(const std::string& s) {
  BigInt x;
  for (char c : s) {
    x = BigInt::Add(BigInt::Mul(x, BigInt(10)),
                    BigInt(static_cast<uint64_t>(c - '0')));
  }
  return x;
}

TEST(MontgomeryCtxTest, UsableGate) {
  EXPECT_FALSE(MontgomeryCtx::Usable(BigInt::Zero()));
  EXPECT_FALSE(MontgomeryCtx::Usable(BigInt::One()));
  EXPECT_FALSE(MontgomeryCtx::Usable(BigInt(2)));
  EXPECT_FALSE(MontgomeryCtx::Usable(BigInt(4)));
  EXPECT_TRUE(MontgomeryCtx::Usable(BigInt(3)));
  EXPECT_TRUE(MontgomeryCtx::Usable(BigInt(0xFFFFFFFFull)));
}

TEST(MontgomeryCtxTest, ZeroAndOneOperands) {
  MontgomeryCtx ctx(BigInt(101));
  EXPECT_EQ(ctx.ModMul(BigInt::Zero(), BigInt(57)), BigInt::Zero());
  EXPECT_EQ(ctx.ModMul(BigInt(57), BigInt::Zero()), BigInt::Zero());
  EXPECT_EQ(ctx.ModMul(BigInt::One(), BigInt(57)), BigInt(57));
  EXPECT_EQ(ctx.ModMul(BigInt(57), BigInt::One()), BigInt(57));
  // a^0 = 1, 0^e = 0, 1^e = 1, a^1 = a.
  EXPECT_EQ(ctx.ModExp(BigInt(57), BigInt::Zero()), BigInt::One());
  EXPECT_EQ(ctx.ModExp(BigInt::Zero(), BigInt(12)), BigInt::Zero());
  EXPECT_EQ(ctx.ModExp(BigInt::One(), BigInt(12)), BigInt::One());
  EXPECT_EQ(ctx.ModExp(BigInt(57), BigInt::One()), BigInt(57));
  // 0^0 = 1 by the ladder's convention (matches schoolbook).
  EXPECT_EQ(ctx.ModExp(BigInt::Zero(), BigInt::Zero()),
            BigInt::ModExpSchoolbook(BigInt::Zero(), BigInt::Zero(),
                                     BigInt(101)));
}

TEST(MontgomeryCtxTest, OperandsLargerThanModulusAreReduced) {
  MontgomeryCtx ctx(BigInt(97));
  BigInt big = FromDecimal("123456789123456789123456789");
  EXPECT_EQ(ctx.ModMul(big, big),
            BigInt::ModMul(BigInt::Mod(big, BigInt(97)),
                           BigInt::Mod(big, BigInt(97)), BigInt(97)));
  EXPECT_EQ(ctx.ModExp(big, BigInt(65537)),
            BigInt::ModExpSchoolbook(big, BigInt(65537), BigInt(97)));
}

TEST(MontgomeryCtxTest, LimbBoundaryCarryChains) {
  // Moduli and operands sitting right at 32/64/96-bit limb boundaries,
  // where the CIOS inner-loop carries propagate across every word.
  std::vector<BigInt> moduli = {
      BigInt(0xFFFFFFFFull),          // 2^32 - 1
      BigInt(0x100000001ull),         // 2^32 + 1
      BigInt(0xFFFFFFFFFFFFFFFFull),  // 2^64 - 1
      BigInt::Add(BigInt::ShiftLeft(BigInt::One(), 96), BigInt(0x2B)),
      BigInt::Sub(BigInt::ShiftLeft(BigInt::One(), 127), BigInt::One()),
  };
  for (const BigInt& m : moduli) {
    ASSERT_TRUE(MontgomeryCtx::Usable(m)) << m.ToDecimalString();
    MontgomeryCtx ctx(m);
    std::vector<BigInt> operands = {
        BigInt::Zero(), BigInt::One(), BigInt(0xFFFFFFFFull),
        BigInt::Sub(m, BigInt::One()),
        BigInt::Mod(BigInt(0xDEADBEEFCAFEBABEull), m)};
    for (const BigInt& a : operands) {
      for (const BigInt& b : operands) {
        EXPECT_EQ(ctx.ModMul(a, b), BigInt::ModMul(a, b, m))
            << "m=" << m.ToDecimalString() << " a=" << a.ToDecimalString()
            << " b=" << b.ToDecimalString();
      }
      EXPECT_EQ(ctx.ModExp(a, BigInt(0x10001)),
                BigInt::ModExpSchoolbook(a, BigInt(0x10001), m))
          << "m=" << m.ToDecimalString() << " a=" << a.ToDecimalString();
    }
  }
}

TEST(MontgomeryCtxTest, ToMontFromMontRoundTrip) {
  Rng rng(11);
  BigInt m = BigInt::GeneratePrime(160, &rng);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 50; ++i) {
    BigInt x = BigInt::RandomBelow(m, &rng);
    EXPECT_EQ(ctx.FromMont(ctx.ToMont(x)), x);
  }
  EXPECT_EQ(ctx.FromMont(ctx.OneMont()), BigInt::One());
}

TEST(BigIntModExpTest, EvenModulusFallsBackToSchoolbook) {
  // Montgomery requires an odd modulus; ModExp must still be correct for
  // even ones via the schoolbook path.
  std::vector<BigInt> moduli = {BigInt(2), BigInt(4096),
                                BigInt(0x100000000ull),
                                BigInt(2 * 3 * 5 * 7 * 11 * 13)};
  Rng rng(5);
  for (const BigInt& m : moduli) {
    for (int i = 0; i < 20; ++i) {
      BigInt a = BigInt::RandomBelow(m, &rng);
      BigInt e(rng.Uniform(1000));
      EXPECT_EQ(BigInt::ModExp(a, e, m), BigInt::ModExpSchoolbook(a, e, m))
          << "m=" << m.ToDecimalString();
    }
  }
}

TEST(BigIntModExpTest, RandomizedMontgomeryVsSchoolbookCrossCheck) {
  // Seeded randomized sweep: 1000 (modulus, a, b, e) draws across limb
  // counts 1..16, each checked ModMul and ModExp against the schoolbook
  // reference. Any kernel carry bug shows up here with a reproducible seed.
  Rng rng(20260805);
  for (int iter = 0; iter < 1000; ++iter) {
    size_t bits = 8 + rng.Uniform(504);  // 8..511-bit moduli
    BigInt m = BigInt::RandomBits(bits, &rng);
    if (!m.IsOdd()) {
      m = BigInt::Add(m, BigInt::One());
    }
    if (!MontgomeryCtx::Usable(m)) {
      continue;
    }
    MontgomeryCtx ctx(m);
    BigInt a = BigInt::RandomBelow(m, &rng);
    BigInt b = BigInt::RandomBelow(m, &rng);
    ASSERT_EQ(ctx.ModMul(a, b), BigInt::ModMul(a, b, m))
        << "iter=" << iter << " m=" << m.ToDecimalString();
    BigInt e = BigInt::RandomBits(1 + rng.Uniform(96), &rng);
    ASSERT_EQ(ctx.ModExp(a, e), BigInt::ModExpSchoolbook(a, e, m))
        << "iter=" << iter << " m=" << m.ToDecimalString();
  }
}

TEST(MontgomerySimdTest, ForceScalarFlipsDispatch) {
  // The dispatch test the packing/batching paths rely on: forcing the
  // fallback must actually change the selected kernel when AVX2 exists,
  // and must be a no-op (already scalar) when it does not.
  const bool was_forced = simd::force_scalar();
  simd::SetForceScalar(false);
  if (simd::Avx2Supported()) {
    EXPECT_TRUE(simd::Active());
    EXPECT_STREQ(simd::KernelName(), "avx2");
  } else {
    EXPECT_FALSE(simd::Active());
    EXPECT_STREQ(simd::KernelName(), "scalar");
  }
  simd::SetForceScalar(true);
  EXPECT_FALSE(simd::Active());
  EXPECT_STREQ(simd::KernelName(), "scalar");
  simd::SetForceScalar(was_forced);
}

TEST(MontgomerySimdTest, MontMulQuadMatchesScalarKernel) {
  // Four independent lanes through the lockstep kernel must equal four
  // scalar MontMuls bit for bit, on both dispatch paths, across limb
  // counts that exercise partial registers and long carry chains.
  Rng rng(424243);
  for (size_t bits : {32u, 64u, 96u, 160u, 256u, 521u, 1024u}) {
    BigInt m = BigInt::RandomBits(bits, &rng);
    if (!m.IsOdd()) {
      m = BigInt::Add(m, BigInt::One());
    }
    ASSERT_TRUE(MontgomeryCtx::Usable(m));
    MontgomeryCtx ctx(m);
    MontgomeryCtx::Limbs a[4], b[4], expected[4], got[4];
    for (size_t l = 0; l < 4; ++l) {
      a[l] = ctx.ToMont(BigInt::RandomBelow(m, &rng));
      b[l] = ctx.ToMont(BigInt::RandomBelow(m, &rng));
      ctx.MontMul(a[l], b[l], &expected[l]);
    }
    ForEachKernel([&](const char* kernel) {
      ctx.MontMulQuad(a, b, got);
      for (size_t l = 0; l < 4; ++l) {
        EXPECT_EQ(got[l], expected[l])
            << "kernel=" << kernel << " bits=" << bits << " lane=" << l;
      }
    });
  }
}

TEST(MontgomerySimdTest, MontMulQuadEdgeOperands) {
  // Zero, one, and m-1 lanes mixed in one quartet: the conditional
  // subtract must be decided independently per lane.
  BigInt m = BigInt::Sub(BigInt::ShiftLeft(BigInt::One(), 127), BigInt::One());
  MontgomeryCtx ctx(m);
  MontgomeryCtx::Limbs a[4] = {
      ctx.ToMont(BigInt::Zero()), ctx.ToMont(BigInt::One()),
      ctx.ToMont(BigInt::Sub(m, BigInt::One())),
      ctx.ToMont(BigInt(0xDEADBEEFu))};
  MontgomeryCtx::Limbs b[4] = {
      ctx.ToMont(BigInt::Sub(m, BigInt::One())), ctx.ToMont(BigInt::Zero()),
      ctx.ToMont(BigInt::Sub(m, BigInt::One())), ctx.ToMont(BigInt::One())};
  MontgomeryCtx::Limbs expected[4], got[4];
  for (size_t l = 0; l < 4; ++l) {
    ctx.MontMul(a[l], b[l], &expected[l]);
  }
  ForEachKernel([&](const char* kernel) {
    ctx.MontMulQuad(a, b, got);
    for (size_t l = 0; l < 4; ++l) {
      EXPECT_EQ(got[l], expected[l]) << "kernel=" << kernel << " lane=" << l;
    }
  });
}

TEST(MontgomeryBatchTest, ModExpManyMatchesPerBaseModExp) {
  // Batch sizes around the 4-lane group boundary, including the padded
  // remainder group, against per-base ModExp on both kernels.
  Rng rng(889901);
  BigInt m = BigInt::GeneratePrime(192, &rng);
  MontgomeryCtx ctx(m);
  BigInt e = BigInt::RandomBits(160, &rng);
  for (size_t count : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 13u}) {
    std::vector<BigInt> bases(count);
    for (BigInt& base : bases) {
      base = BigInt::RandomBelow(m, &rng);
    }
    ForEachKernel([&](const char* kernel) {
      std::vector<BigInt> got = ctx.ModExpMany(bases, e);
      ASSERT_EQ(got.size(), count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(got[i], ctx.ModExp(bases[i], e))
            << "kernel=" << kernel << " count=" << count << " i=" << i;
      }
    });
  }
}

TEST(MontgomeryBatchTest, ModExpManyEdgeExponentsAndBases) {
  Rng rng(31337);
  BigInt m = BigInt::GeneratePrime(160, &rng);
  MontgomeryCtx ctx(m);
  std::vector<BigInt> bases = {BigInt::Zero(), BigInt::One(),
                               BigInt::Sub(m, BigInt::One()),
                               BigInt::RandomBelow(m, &rng),
                               BigInt::Mul(m, BigInt(3))};  // reduced first
  for (const BigInt& e :
       {BigInt::Zero(), BigInt::One(), BigInt(16), BigInt(0x10001),
        BigInt::RandomBits(128, &rng)}) {
    std::vector<BigInt> got = ctx.ModExpMany(bases, e);
    for (size_t i = 0; i < bases.size(); ++i) {
      EXPECT_EQ(got[i], ctx.ModExp(bases[i], e))
          << "e=" << e.ToDecimalString() << " i=" << i;
    }
  }
}

TEST(MontgomeryBatchTest, BigIntModExpManyDispatchesBothModulusParities) {
  Rng rng(777);
  std::vector<BigInt> bases;
  for (int i = 0; i < 6; ++i) {
    bases.push_back(BigInt::RandomBits(64, &rng));
  }
  BigInt e(65537);
  for (const BigInt& m : {BigInt::GeneratePrime(96, &rng),  // odd: kernel
                          BigInt(4096), BigInt::One()}) {   // even/one: fallback
    std::vector<BigInt> got = BigInt::ModExpMany(bases, e, m);
    for (size_t i = 0; i < bases.size(); ++i) {
      EXPECT_EQ(got[i], BigInt::ModExp(bases[i], e, m))
          << "m=" << m.ToDecimalString() << " i=" << i;
    }
  }
}

TEST(FixedBaseTableTest, PowMontManyMatchesPerExponentPowMont) {
  Rng rng(5150);
  BigInt m = BigInt::GeneratePrime(192, &rng);
  MontgomeryCtx ctx(m);
  BigInt g = BigInt::RandomBelow(m, &rng);
  FixedBaseTable table(&ctx, g, /*max_exp_bits=*/128);
  // Mixed widths in one batch: zero, tiny, and full-width exponents land
  // in the same 4-lane group so idle-lane identity multiplies are hit.
  std::vector<BigInt> es = {
      BigInt::Zero(), BigInt::One(), BigInt(15), BigInt(16),
      BigInt::RandomBits(128, &rng), BigInt::RandomBits(7, &rng),
      BigInt::RandomBits(128, &rng)};
  for (int i = 0; i < 20; ++i) {
    es.push_back(BigInt::RandomBits(1 + rng.Uniform(128), &rng));
  }
  ForEachKernel([&](const char* kernel) {
    std::vector<MontgomeryCtx::Limbs> got = table.PowMontMany(es);
    ASSERT_EQ(got.size(), es.size());
    for (size_t i = 0; i < es.size(); ++i) {
      EXPECT_EQ(got[i], table.PowMont(es[i]))
          << "kernel=" << kernel << " i=" << i;
    }
  });
}

TEST(FixedBaseTableTest, MatchesModExpAcrossExponentRange) {
  Rng rng(77);
  BigInt m = BigInt::GeneratePrime(192, &rng);
  MontgomeryCtx ctx(m);
  BigInt g = BigInt::RandomBelow(m, &rng);
  FixedBaseTable table(&ctx, g, /*max_exp_bits=*/128);

  // Edge exponents: 0, 1, single-digit, digit boundaries, max width.
  std::vector<BigInt> exps = {
      BigInt::Zero(), BigInt::One(), BigInt(15), BigInt(16), BigInt(255),
      BigInt(256), BigInt(0xFFFFFFFFull),
      BigInt::Sub(BigInt::ShiftLeft(BigInt::One(), 128), BigInt::One())};
  for (int i = 0; i < 100; ++i) {
    exps.push_back(BigInt::RandomBits(1 + rng.Uniform(128), &rng));
  }
  for (const BigInt& e : exps) {
    EXPECT_EQ(table.Pow(e), ctx.ModExp(g, e)) << "e=" << e.ToDecimalString();
  }
}

TEST(FixedBaseTableTest, PowMontComposesWithMontMul) {
  Rng rng(78);
  BigInt m = BigInt::GeneratePrime(128, &rng);
  MontgomeryCtx ctx(m);
  BigInt g = BigInt::RandomBelow(m, &rng);
  FixedBaseTable table(&ctx, g, 64);

  // g^a * g^b computed in the Montgomery domain equals g^(a+b).
  BigInt a(123456789), b(987654321);
  MontgomeryCtx::Limbs prod = table.PowMont(a);
  MontgomeryCtx::Limbs gb = table.PowMont(b);
  ctx.MontMul(prod, gb, &prod);
  EXPECT_EQ(ctx.FromMont(prod), ctx.ModExp(g, BigInt::Add(a, b)));
}

}  // namespace
}  // namespace pds::crypto
