#include <gtest/gtest.h>

#include <memory>

#include "sync/folder.h"
#include "sync/folkis.h"

namespace pds::sync {
namespace {

class FolderTest : public ::testing::Test {
 protected:
  FolderTest() {
    crypto::SymmetricKey key = crypto::KeyFromString("family-folder");
    for (uint64_t i = 0; i < 3; ++i) {
      mcu::SecureToken::Config cfg;
      cfg.token_id = i + 1;
      cfg.fleet_key = key;
      tokens_.push_back(std::make_unique<mcu::SecureToken>(cfg));
    }
    crypto::SymmetricKey other = crypto::KeyFromString("other-fleet");
    mcu::SecureToken::Config cfg;
    cfg.token_id = 99;
    cfg.fleet_key = other;
    foreign_token_ = std::make_unique<mcu::SecureToken>(cfg);
  }

  std::vector<std::unique_ptr<mcu::SecureToken>> tokens_;
  std::unique_ptr<mcu::SecureToken> foreign_token_;
};

TEST_F(FolderTest, AddAndVersionVector) {
  PersonalFolder home(tokens_[0].get(), /*folder_id=*/7);
  ASSERT_TRUE(home.AddEntry("prescription", "aspirin 100mg").ok());
  ASSERT_TRUE(home.AddEntry("social-report", "home visit ok").ok());
  EXPECT_EQ(home.entries().size(), 2u);
  auto vv = home.VersionVector();
  ASSERT_EQ(vv.size(), 1u);
  EXPECT_EQ(vv[tokens_[0]->id()], 1u);  // seq 0 and 1
}

TEST_F(FolderTest, PushPullThroughArchive) {
  ArchiveServer archive;
  PersonalFolder home(tokens_[0].get(), 7);
  PersonalFolder hospital(tokens_[1].get(), 7);

  ASSERT_TRUE(home.AddEntry("prescription", "aspirin").ok());
  ASSERT_TRUE(home.AddEntry("allergy", "penicillin").ok());
  global::Metrics metrics;
  ASSERT_TRUE(home.PushTo(&archive, &metrics).ok());
  EXPECT_EQ(archive.num_blobs(), 2u);
  EXPECT_GT(metrics.bytes, 0u);

  ASSERT_TRUE(hospital.PullFrom(archive, &metrics).ok());
  ASSERT_EQ(hospital.entries().size(), 2u);
  EXPECT_EQ(hospital.entries()[0].content, "aspirin");
}

TEST_F(FolderTest, PushIsIncremental) {
  ArchiveServer archive;
  PersonalFolder home(tokens_[0].get(), 7);
  ASSERT_TRUE(home.AddEntry("a", "1").ok());
  ASSERT_TRUE(home.PushTo(&archive, nullptr).ok());
  ASSERT_TRUE(home.AddEntry("b", "2").ok());
  ASSERT_TRUE(home.PushTo(&archive, nullptr).ok());
  EXPECT_EQ(archive.num_blobs(), 2u);
  // Re-push without changes uploads nothing new.
  ASSERT_TRUE(home.PushTo(&archive, nullptr).ok());
  EXPECT_EQ(archive.num_blobs(), 2u);
}

TEST_F(FolderTest, PullIsIdempotent) {
  ArchiveServer archive;
  PersonalFolder home(tokens_[0].get(), 7);
  PersonalFolder other(tokens_[1].get(), 7);
  ASSERT_TRUE(home.AddEntry("a", "1").ok());
  ASSERT_TRUE(home.PushTo(&archive, nullptr).ok());
  ASSERT_TRUE(other.PullFrom(archive, nullptr).ok());
  ASSERT_TRUE(other.PullFrom(archive, nullptr).ok());
  EXPECT_EQ(other.entries().size(), 1u);
}

TEST_F(FolderTest, ArchiveSeesOnlyCiphertext) {
  // A token outside the fleet cannot open archived blobs — i.e., the
  // archive's content is useless without the fleet key.
  ArchiveServer archive;
  PersonalFolder home(tokens_[0].get(), 7);
  ASSERT_TRUE(home.AddEntry("secret", "diagnosis").ok());
  ASSERT_TRUE(home.PushTo(&archive, nullptr).ok());

  PersonalFolder attacker(foreign_token_.get(), 7);
  std::vector<Bytes> blobs = archive.FetchMissing(7, {});
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_FALSE(attacker.ImportDelta(blobs, nullptr).ok());
}

TEST_F(FolderTest, FoldersAreIsolatedById) {
  ArchiveServer archive;
  PersonalFolder alice(tokens_[0].get(), 1);
  PersonalFolder bob(tokens_[1].get(), 2);
  ASSERT_TRUE(alice.AddEntry("a", "alice-data").ok());
  ASSERT_TRUE(alice.PushTo(&archive, nullptr).ok());
  ASSERT_TRUE(bob.PullFrom(archive, nullptr).ok());
  EXPECT_TRUE(bob.entries().empty());
}

TEST_F(FolderTest, BadgeSyncWithoutNetwork) {
  // The field experiment: home server and hospital replica synchronize by
  // physically carrying a badge, no network, no central server.
  PersonalFolder home(tokens_[0].get(), 7);
  PersonalFolder hospital(tokens_[1].get(), 7);
  ASSERT_TRUE(home.AddEntry("prescription", "aspirin").ok());
  ASSERT_TRUE(hospital.AddEntry("lab-result", "cholesterol ok").ok());

  global::Metrics metrics;
  ASSERT_TRUE(PersonalFolder::BadgeSync(&home, &hospital, &metrics).ok());
  EXPECT_EQ(home.entries().size(), 2u);
  EXPECT_EQ(hospital.entries().size(), 2u);

  // Second sync moves nothing.
  global::Metrics metrics2;
  ASSERT_TRUE(PersonalFolder::BadgeSync(&home, &hospital, &metrics2).ok());
  EXPECT_EQ(metrics2.bytes, 0u);
}

TEST_F(FolderTest, ThreeWayConvergence) {
  PersonalFolder a(tokens_[0].get(), 7);
  PersonalFolder b(tokens_[1].get(), 7);
  PersonalFolder c(tokens_[2].get(), 7);
  ASSERT_TRUE(a.AddEntry("x", "from-a").ok());
  ASSERT_TRUE(b.AddEntry("y", "from-b").ok());
  ASSERT_TRUE(c.AddEntry("z", "from-c").ok());

  ASSERT_TRUE(PersonalFolder::BadgeSync(&a, &b, nullptr).ok());
  ASSERT_TRUE(PersonalFolder::BadgeSync(&b, &c, nullptr).ok());
  ASSERT_TRUE(PersonalFolder::BadgeSync(&c, &a, nullptr).ok());

  EXPECT_EQ(a.entries().size(), 3u);
  EXPECT_EQ(b.entries().size(), 3u);
  EXPECT_EQ(c.entries().size(), 3u);
}

TEST(FolkisTest, MessageEventuallyDelivered) {
  FerryNetwork::Config cfg;
  cfg.num_villages = 8;
  cfg.num_ferries = 2;
  FerryNetwork net(cfg);
  uint64_t id = net.Post(0, 4, 512);
  net.RunUntilDelivered(100000);
  EXPECT_TRUE(net.Delivered(id));
  EXPECT_GT(net.DeliveryDelay(id), 0u);
}

TEST(FolkisTest, SameVillageDeliveryIsFast) {
  FerryNetwork::Config cfg;
  cfg.num_villages = 8;
  cfg.num_ferries = 4;
  FerryNetwork net(cfg);
  uint64_t id = net.Post(3, 3, 100);
  net.RunUntilDelivered(100000);
  EXPECT_TRUE(net.Delivered(id));
}

TEST(FolkisTest, MoreFerriesLowerDelay) {
  auto mean_delay = [](uint32_t ferries) {
    FerryNetwork::Config cfg;
    cfg.num_villages = 32;
    cfg.num_ferries = ferries;
    cfg.seed = 5;
    FerryNetwork net(cfg);
    Rng rng(9);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 40; ++i) {
      ids.push_back(net.Post(static_cast<uint32_t>(rng.Uniform(32)),
                             static_cast<uint32_t>(rng.Uniform(32)), 256));
    }
    net.RunUntilDelivered(2000000);
    double total = 0;
    for (uint64_t id : ids) {
      EXPECT_TRUE(net.Delivered(id));
      total += static_cast<double>(net.DeliveryDelay(id));
    }
    return total / static_cast<double>(ids.size());
  };
  double sparse = mean_delay(1);
  double dense = mean_delay(16);
  EXPECT_LT(dense, sparse);
}

TEST(FolkisTest, EpidemicBeatsSingleCustody) {
  auto mean_delay = [](bool epidemic) {
    FerryNetwork::Config cfg;
    cfg.num_villages = 32;
    cfg.num_ferries = 16;
    cfg.epidemic = epidemic;
    cfg.ferry_capacity = 128;
    cfg.seed = 5;
    FerryNetwork net(cfg);
    Rng rng(9);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 40; ++i) {
      ids.push_back(net.Post(static_cast<uint32_t>(rng.Uniform(32)),
                             static_cast<uint32_t>(rng.Uniform(32)), 256));
    }
    net.RunUntilDelivered(2000000);
    double total = 0;
    for (uint64_t id : ids) {
      EXPECT_TRUE(net.Delivered(id));
      total += static_cast<double>(net.DeliveryDelay(id));
    }
    return total / static_cast<double>(ids.size());
  };
  // With many ferries, replication wins big: the first of 16 random walks
  // reaches the destination far sooner than a designated one.
  EXPECT_LT(mean_delay(true), mean_delay(false) / 2);
}

TEST(FolkisTest, EpidemicDeliversEachMessageOnce) {
  FerryNetwork::Config cfg;
  cfg.num_villages = 8;
  cfg.num_ferries = 6;
  cfg.epidemic = true;
  FerryNetwork net(cfg);
  for (int i = 0; i < 20; ++i) {
    net.Post(0, 4, 64);
  }
  net.RunUntilDelivered(1000000);
  EXPECT_EQ(net.messages_delivered(), 20u);  // copies never double-count
}

TEST(FolkisTest, CapacityBoundsCargo) {
  FerryNetwork::Config cfg;
  cfg.num_villages = 4;
  cfg.num_ferries = 1;
  cfg.ferry_capacity = 2;
  FerryNetwork net(cfg);
  for (int i = 0; i < 10; ++i) {
    net.Post(0, 2, 64);
  }
  // All eventually delivered despite the tiny capacity (multiple trips).
  net.RunUntilDelivered(1000000);
  EXPECT_EQ(net.messages_delivered(), 10u);
}

TEST(FolkisTest, CostAccounting) {
  FerryNetwork::Config cfg;
  cfg.num_villages = 8;
  cfg.num_ferries = 3;
  FerryNetwork net(cfg);
  net.Post(0, 5, 1000);
  uint64_t steps = net.RunUntilDelivered(100000);
  EXPECT_EQ(net.ferry_steps(), steps * 3);
  EXPECT_GT(net.byte_steps(), 0u);
}

}  // namespace
}  // namespace pds::sync
