#include <gtest/gtest.h>

#include <string>

#include "flash/flash.h"
#include "logstore/sequential_log.h"

namespace pds::logstore {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.page_size = 128;
  g.pages_per_block = 4;
  g.block_count = 64;
  return g;
}

class LogTest : public ::testing::Test {
 protected:
  LogTest() : chip_(SmallGeometry()), alloc_(&chip_) {}

  flash::Partition NewPartition(uint32_t blocks) {
    auto p = alloc_.Allocate(blocks);
    EXPECT_TRUE(p.ok());
    return *p;
  }

  flash::FlashChip chip_;
  flash::PartitionAllocator alloc_;
};

TEST_F(LogTest, SequentialAppendAndRead) {
  SequentialLog log(NewPartition(2));
  Bytes a(128, 0xAA), b(128, 0xBB);
  auto p0 = log.AppendPage(ByteView(a));
  auto p1 = log.AppendPage(ByteView(b));
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(log.num_pages(), 2u);

  Bytes out;
  ASSERT_TRUE(log.ReadPage(0, &out).ok());
  EXPECT_EQ(out[0], 0xAA);
  ASSERT_TRUE(log.ReadPage(1, &out).ok());
  EXPECT_EQ(out[0], 0xBB);
}

TEST_F(LogTest, ReadBeyondHeadFails) {
  SequentialLog log(NewPartition(1));
  Bytes out;
  EXPECT_EQ(log.ReadPage(0, &out).code(), StatusCode::kOutOfRange);
}

TEST_F(LogTest, FillsToCapacityThenFails) {
  SequentialLog log(NewPartition(1));  // 4 pages
  Bytes page(128, 1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(log.AppendPage(ByteView(page)).ok());
  }
  EXPECT_EQ(log.AppendPage(ByteView(page)).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(LogTest, ResetRewinds) {
  SequentialLog log(NewPartition(1));
  Bytes page(128, 1);
  ASSERT_TRUE(log.AppendPage(ByteView(page)).ok());
  ASSERT_TRUE(log.Reset().ok());
  EXPECT_EQ(log.num_pages(), 0u);
  ASSERT_TRUE(log.AppendPage(ByteView(page)).ok());  // reusable after erase
}

TEST_F(LogTest, RecordRoundTripSmall) {
  RecordLog log(NewPartition(4));
  auto a0 = log.Append(ByteView(std::string_view("hello")));
  auto a1 = log.Append(ByteView(std::string_view("world")));
  ASSERT_TRUE(a0.ok());
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(log.num_records(), 2u);

  Bytes rec;
  ASSERT_TRUE(log.ReadAt(*a0, &rec).ok());
  EXPECT_EQ(ByteView(rec).ToString(), "hello");
  ASSERT_TRUE(log.ReadAt(*a1, &rec).ok());
  EXPECT_EQ(ByteView(rec).ToString(), "world");
}

TEST_F(LogTest, RecordsSpanPages) {
  RecordLog log(NewPartition(8));
  // 100-byte records on 128-byte pages force spanning.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 10; ++i) {
    std::string payload(100, static_cast<char>('a' + i));
    auto addr = log.Append(ByteView(std::string_view(payload)));
    ASSERT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  for (int i = 0; i < 10; ++i) {
    Bytes rec;
    ASSERT_TRUE(log.ReadAt(addrs[i], &rec).ok());
    ASSERT_EQ(rec.size(), 100u);
    EXPECT_EQ(rec[0], static_cast<uint8_t>('a' + i));
    EXPECT_EQ(rec[99], static_cast<uint8_t>('a' + i));
  }
}

TEST_F(LogTest, RecordLargerThanPage) {
  RecordLog log(NewPartition(8));
  std::string big(500, 'z');
  auto addr = log.Append(ByteView(std::string_view(big)));
  ASSERT_TRUE(addr.ok());
  Bytes rec;
  ASSERT_TRUE(log.ReadAt(*addr, &rec).ok());
  EXPECT_EQ(ByteView(rec).ToString(), big);
}

TEST_F(LogTest, EmptyRecord) {
  RecordLog log(NewPartition(1));
  auto addr = log.Append(ByteView());
  ASSERT_TRUE(addr.ok());
  Bytes rec = {1, 2, 3};
  ASSERT_TRUE(log.ReadAt(*addr, &rec).ok());
  EXPECT_TRUE(rec.empty());
}

TEST_F(LogTest, ReaderIteratesInOrder) {
  RecordLog log(NewPartition(8));
  for (int i = 0; i < 50; ++i) {
    std::string payload = "record-" + std::to_string(i);
    ASSERT_TRUE(log.Append(ByteView(std::string_view(payload))).ok());
  }

  auto reader = log.NewReader();
  int i = 0;
  Bytes rec;
  while (!reader.AtEnd()) {
    ASSERT_TRUE(reader.Next(&rec).ok());
    EXPECT_EQ(ByteView(rec).ToString(), "record-" + std::to_string(i));
    ++i;
  }
  EXPECT_EQ(i, 50);
  EXPECT_EQ(reader.Next(&rec).code(), StatusCode::kOutOfRange);
}

TEST_F(LogTest, ScanCostsOnePageReadPerPage) {
  RecordLog log(NewPartition(8));
  // 30-byte records, 128-byte pages -> several records per page.
  for (int i = 0; i < 40; ++i) {
    std::string payload(30, static_cast<char>('a' + (i % 26)));
    ASSERT_TRUE(log.Append(ByteView(std::string_view(payload))).ok());
  }
  uint32_t flushed_pages = log.num_pages_used();
  ASSERT_GT(flushed_pages, 2u);

  chip_.ResetStats();
  auto reader = log.NewReader();
  Bytes rec;
  while (!reader.AtEnd()) {
    ASSERT_TRUE(reader.Next(&rec).ok());
  }
  // The reader caches one page: a full scan reads each flushed page once.
  EXPECT_LE(chip_.stats().page_reads, flushed_pages);
}

TEST_F(LogTest, TailVisibleBeforeFlush) {
  RecordLog log(NewPartition(1));
  // One small record stays in the RAM tail (page not full).
  auto addr = log.Append(ByteView(std::string_view("tiny")));
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(log.num_pages_used(), 1u);  // the RAM tail counts as a page

  chip_.ResetStats();
  Bytes rec;
  ASSERT_TRUE(log.ReadAt(*addr, &rec).ok());
  EXPECT_EQ(ByteView(rec).ToString(), "tiny");
  EXPECT_EQ(chip_.stats().page_reads, 0u);  // served from RAM
}

TEST_F(LogTest, ReadAtBadOffsetFails) {
  RecordLog log(NewPartition(1));
  ASSERT_TRUE(log.Append(ByteView(std::string_view("x"))).ok());
  Bytes rec;
  EXPECT_FALSE(log.ReadAt(9999, &rec).ok());
}

TEST_F(LogTest, RecordLogReset) {
  RecordLog log(NewPartition(2));
  ASSERT_TRUE(log.Append(ByteView(std::string_view("abc"))).ok());
  ASSERT_TRUE(log.Reset().ok());
  EXPECT_EQ(log.num_records(), 0u);
  EXPECT_EQ(log.size_bytes(), 0u);
  auto addr = log.Append(ByteView(std::string_view("def")));
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(*addr, 0u);
}

TEST_F(LogTest, SequentialWritesNeverTriggerInPlaceUpdate) {
  // Meta-test of the framework: a record log filling many pages must never
  // hit the NAND write-once check.
  RecordLog log(NewPartition(16));  // 16 blocks * 4 pages * 128 B = 8 KB
  for (int i = 0; i < 300; ++i) {   // 300 * 21 B < 8 KB
    std::string payload(17, static_cast<char>(i % 256));
    ASSERT_TRUE(log.Append(ByteView(std::string_view(payload))).ok())
        << "append " << i;
  }
}

}  // namespace
}  // namespace pds::logstore
