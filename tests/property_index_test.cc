// Property tests for the index structures: across entry counts, key
// distributions, and Bloom configurations, the key-log index and the
// reorganized tree index must agree exactly with a std::multimap oracle —
// and the tree must return rowids in ascending order.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.h"
#include "embdb/key_index.h"
#include "embdb/reorganize.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {
namespace {

enum class KeyKind { kU64Dense, kU64Sparse, kString, kI64Signed, kDouble };

// (num_entries, distinct_keys, bits_per_key, key kind)
using IndexParam = std::tuple<uint64_t, uint64_t, double, KeyKind>;

Value MakeKey(KeyKind kind, uint64_t raw) {
  switch (kind) {
    case KeyKind::kU64Dense:
      return Value::U64(raw);
    case KeyKind::kU64Sparse:
      return Value::U64(raw * 0x9E3779B97F4A7C15ULL);
    case KeyKind::kString:
      return Value::Str("key-" + std::to_string(raw));
    case KeyKind::kI64Signed:
      return Value::I64(static_cast<int64_t>(raw) - 500);
    case KeyKind::kDouble:
      return Value::F64(static_cast<double>(raw) * 0.25 - 100.0);
  }
  return Value::U64(raw);
}

class IndexOracleProperty : public ::testing::TestWithParam<IndexParam> {};

TEST_P(IndexOracleProperty, KeyLogAndTreeMatchOracle) {
  auto [entries, distinct, bits_per_key, kind] = GetParam();
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 4096;
  flash::FlashChip chip(g);
  flash::PartitionAllocator alloc(&chip);
  mcu::RamGauge gauge(128 * 1024);

  auto keys_part = alloc.Allocate(512);
  auto bloom_part = alloc.Allocate(128);
  ASSERT_TRUE(keys_part.ok());
  ASSERT_TRUE(bloom_part.ok());
  KeyLogIndex::Options opts;
  opts.bits_per_key = bits_per_key;
  KeyLogIndex index(*keys_part, *bloom_part, &gauge, opts);
  ASSERT_TRUE(index.Init().ok());

  // Oracle keyed by raw id (same MakeKey mapping).
  std::multimap<uint64_t, uint64_t> oracle;
  Rng rng(entries * 7 + distinct);
  for (uint64_t rowid = 0; rowid < entries; ++rowid) {
    uint64_t raw = rng.Uniform(distinct);
    ASSERT_TRUE(index.Insert(MakeKey(kind, raw), rowid).ok());
    oracle.emplace(raw, rowid);
  }

  auto tree = Reorganizer::Reorganize(&index, &alloc, &gauge, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->num_entries(), entries);

  // Probe every distinct raw id plus some absent ones.
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats kstats;
  TreeIndex::LookupStats tstats;
  for (uint64_t raw = 0; raw < distinct + 10; ++raw) {
    std::vector<uint64_t> expected;
    auto [lo, hi] = oracle.equal_range(raw);
    for (auto it = lo; it != hi; ++it) {
      expected.push_back(it->second);
    }
    std::sort(expected.begin(), expected.end());

    Value key = MakeKey(kind, raw);
    ASSERT_TRUE(index.Lookup(key, &rowids, &kstats).ok());
    std::sort(rowids.begin(), rowids.end());
    EXPECT_EQ(rowids, expected) << "key-log raw " << raw;

    ASSERT_TRUE(tree->Lookup(key, &rowids, &tstats).ok());
    // Tree returns ascending rowids without sorting.
    EXPECT_TRUE(std::is_sorted(rowids.begin(), rowids.end()));
    EXPECT_EQ(rowids, expected) << "tree raw " << raw;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, IndexOracleProperty,
    ::testing::Values(
        IndexParam{100, 10, 16.0, KeyKind::kU64Dense},
        IndexParam{1000, 100, 16.0, KeyKind::kU64Dense},
        IndexParam{5000, 50, 16.0, KeyKind::kU64Dense},   // heavy duplicates
        IndexParam{5000, 5000, 16.0, KeyKind::kU64Sparse},  // unique keys
        IndexParam{2000, 200, 2.0, KeyKind::kU64Dense},   // sloppy blooms
        IndexParam{2000, 200, 24.0, KeyKind::kU64Dense},  // rich blooms
        IndexParam{3000, 300, 16.0, KeyKind::kString},
        IndexParam{1000, 1000, 16.0, KeyKind::kI64Signed},
        IndexParam{1000, 500, 16.0, KeyKind::kDouble}));

// Range-scan property on the tree: must equal the oracle's sorted window.
class TreeRangeProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(TreeRangeProperty, RangeMatchesOracle) {
  auto [entries, distinct] = GetParam();
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 4096;
  flash::FlashChip chip(g);
  flash::PartitionAllocator alloc(&chip);
  mcu::RamGauge gauge(128 * 1024);

  auto keys_part = alloc.Allocate(256);
  auto bloom_part = alloc.Allocate(64);
  KeyLogIndex index(*keys_part, *bloom_part, &gauge, {});
  ASSERT_TRUE(index.Init().ok());

  std::multimap<uint64_t, uint64_t> oracle;
  Rng rng(entries + distinct * 3);
  for (uint64_t rowid = 0; rowid < entries; ++rowid) {
    uint64_t key = rng.Uniform(distinct);
    ASSERT_TRUE(index.Insert(Value::U64(key), rowid).ok());
    oracle.emplace(key, rowid);
  }
  auto tree = Reorganizer::Reorganize(&index, &alloc, &gauge, {});
  ASSERT_TRUE(tree.ok());

  for (int probe = 0; probe < 20; ++probe) {
    uint64_t lo = rng.Uniform(distinct);
    uint64_t hi = lo + rng.Uniform(distinct / 2 + 1);
    std::multiset<std::pair<uint64_t, uint64_t>> expected;
    for (auto& [k, r] : oracle) {
      if (k >= lo && k <= hi) {
        expected.emplace(k, r);
      }
    }
    std::multiset<std::pair<uint64_t, uint64_t>> got;
    uint64_t prev_key = 0;
    bool first = true;
    ASSERT_TRUE(tree->Range(Value::U64(lo), Value::U64(hi),
                            [&](const uint8_t* key_bytes, uint64_t rowid) {
                              uint64_t k = GetU64BE(key_bytes);
                              if (!first) {
                                EXPECT_GE(k, prev_key);  // key order
                              }
                              prev_key = k;
                              first = false;
                              got.emplace(k, rowid);
                              return Status::Ok();
                            })
                    .ok());
    EXPECT_EQ(got, expected) << "range [" << lo << ", " << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, TreeRangeProperty,
                         ::testing::Values(std::make_tuple(500, 50),
                                           std::make_tuple(3000, 300),
                                           std::make_tuple(3000, 3000),
                                           std::make_tuple(100, 3)));

}  // namespace
}  // namespace pds::embdb
