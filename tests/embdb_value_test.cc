#include <gtest/gtest.h>

#include <cstring>

#include "embdb/schema.h"
#include "embdb/value.h"

namespace pds::embdb {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::U64(1).type(), ColumnType::kUint64);
  EXPECT_EQ(Value::I64(-1).type(), ColumnType::kInt64);
  EXPECT_EQ(Value::F64(1.5).type(), ColumnType::kDouble);
  EXPECT_EQ(Value::Str("x").type(), ColumnType::kString);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::U64(42).AsU64(), 42u);
  EXPECT_EQ(Value::I64(-42).AsI64(), -42);
  EXPECT_DOUBLE_EQ(Value::F64(3.25).AsF64(), 3.25);
  EXPECT_EQ(Value::Str("lyon").AsStr(), "lyon");
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Compare(Value::U64(1), Value::U64(2)), 0);
  EXPECT_EQ(Value::Compare(Value::U64(7), Value::U64(7)), 0);
  EXPECT_LT(Value::Compare(Value::I64(-5), Value::I64(3)), 0);
  EXPECT_LT(Value::Compare(Value::F64(-0.5), Value::F64(0.25)), 0);
  EXPECT_LT(Value::Compare(Value::Str("abc"), Value::Str("abd")), 0);
  EXPECT_GT(Value::Compare(Value::Str("b"), Value::Str("abc")), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::U64(5).ToString(), "5");
  EXPECT_EQ(Value::I64(-5).ToString(), "-5");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
}

// Property: EncodeKey preserves order under memcmp, for every type.
template <typename Gen>
void CheckKeyOrder(Gen gen, int n) {
  for (int i = 0; i < n; ++i) {
    Value a = gen(i);
    Value b = gen(i + 1);
    uint8_t ka[Value::kKeyWidth], kb[Value::kKeyWidth];
    a.EncodeKey(ka);
    b.EncodeKey(kb);
    int vcmp = Value::Compare(a, b);
    int kcmp = std::memcmp(ka, kb, Value::kKeyWidth);
    if (vcmp < 0) {
      EXPECT_LT(kcmp, 0) << a.ToString() << " vs " << b.ToString();
    } else if (vcmp == 0) {
      EXPECT_EQ(kcmp, 0);
    } else {
      EXPECT_GT(kcmp, 0);
    }
  }
}

TEST(ValueKeyTest, U64OrderPreserved) {
  uint64_t samples[] = {0, 1, 255, 256, 65535, 1u << 20, 0xFFFFFFFFu,
                        0x100000000ULL, 0xFFFFFFFFFFFFFFFFULL - 1};
  for (size_t i = 0; i + 1 < std::size(samples); ++i) {
    CheckKeyOrder([&](int j) { return Value::U64(samples[i + j]); }, 1);
  }
}

TEST(ValueKeyTest, I64OrderAcrossSign) {
  int64_t samples[] = {INT64_MIN, -1000000, -1, 0, 1, 1000000, INT64_MAX};
  for (size_t i = 0; i + 1 < std::size(samples); ++i) {
    CheckKeyOrder([&](int j) { return Value::I64(samples[i + j]); }, 1);
  }
}

TEST(ValueKeyTest, DoubleOrderAcrossSign) {
  double samples[] = {-1e300, -1.5, -1e-300, 0.0, 1e-300, 1.5, 1e300};
  for (size_t i = 0; i + 1 < std::size(samples); ++i) {
    CheckKeyOrder([&](int j) { return Value::F64(samples[i + j]); }, 1);
  }
}

TEST(ValueKeyTest, StringOrder) {
  const char* samples[] = {"", "a", "ab", "abc", "b", "lyon", "paris"};
  for (size_t i = 0; i + 1 < std::size(samples); ++i) {
    CheckKeyOrder(
        [&](int j) { return Value::Str(samples[i + j]); }, 1);
  }
}

TEST(ValueKeyTest, LongStringsTruncateToPrefix) {
  std::string long1(40, 'x'), long2(40, 'x');
  long2[39] = 'y';  // differ only beyond the key width
  uint8_t k1[Value::kKeyWidth], k2[Value::kKeyWidth];
  Value::Str(long1).EncodeKey(k1);
  Value::Str(long2).EncodeKey(k2);
  EXPECT_EQ(std::memcmp(k1, k2, Value::kKeyWidth), 0);
}

TEST(TupleCodecTest, RoundTripAllTypes) {
  std::vector<ColumnType> types = {ColumnType::kUint64, ColumnType::kInt64,
                                   ColumnType::kDouble, ColumnType::kString};
  Tuple in = {Value::U64(7), Value::I64(-9), Value::F64(2.5),
              Value::Str("hello world")};
  Bytes encoded;
  EncodeTuple(types, in, &encoded);
  auto out = DecodeTuple(types, ByteView(encoded));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  EXPECT_EQ((*out)[0].AsU64(), 7u);
  EXPECT_EQ((*out)[1].AsI64(), -9);
  EXPECT_DOUBLE_EQ((*out)[2].AsF64(), 2.5);
  EXPECT_EQ((*out)[3].AsStr(), "hello world");
}

TEST(TupleCodecTest, EmptyStringAndZeroValues) {
  std::vector<ColumnType> types = {ColumnType::kString, ColumnType::kUint64};
  Tuple in = {Value::Str(""), Value::U64(0)};
  Bytes encoded;
  EncodeTuple(types, in, &encoded);
  auto out = DecodeTuple(types, ByteView(encoded));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0].AsStr(), "");
  EXPECT_EQ((*out)[1].AsU64(), 0u);
}

TEST(TupleCodecTest, DetectsTruncation) {
  std::vector<ColumnType> types = {ColumnType::kUint64, ColumnType::kString};
  Tuple in = {Value::U64(1), Value::Str("abcdef")};
  Bytes encoded;
  EncodeTuple(types, in, &encoded);
  encoded.resize(encoded.size() - 3);
  EXPECT_EQ(DecodeTuple(types, ByteView(encoded)).status().code(),
            StatusCode::kCorruption);
}

Schema PersonSchema() {
  return Schema("person", {{"id", ColumnType::kUint64, ""},
                           {"name", ColumnType::kString, ""},
                           {"age", ColumnType::kInt64, ""}});
}

TEST(SchemaTest, ColumnIndex) {
  Schema s = PersonSchema();
  EXPECT_EQ(s.ColumnIndex("id"), 0);
  EXPECT_EQ(s.ColumnIndex("age"), 2);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
}

TEST(SchemaTest, ValidateAcceptsMatching) {
  Schema s = PersonSchema();
  Tuple t = {Value::U64(1), Value::Str("ada"), Value::I64(36)};
  EXPECT_TRUE(s.Validate(t).ok());
}

TEST(SchemaTest, ValidateRejectsArity) {
  Schema s = PersonSchema();
  Tuple t = {Value::U64(1)};
  EXPECT_EQ(s.Validate(t).code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRejectsTypeMismatch) {
  Schema s = PersonSchema();
  Tuple t = {Value::U64(1), Value::U64(2), Value::I64(3)};
  EXPECT_EQ(s.Validate(t).code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ColumnTypesExtracted) {
  auto types = PersonSchema().ColumnTypes();
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[1], ColumnType::kString);
}

}  // namespace
}  // namespace pds::embdb
