// End-to-end integration: the full tutorial story in one test file.
// A fleet of PDS nodes holds household data behind token-resident
// policies; a statistics agency runs a secure GROUP-BY through the
// [TNP14] protocols using only what the Share policy exposes; every
// access is audited; and the SSI's recorded view stays ciphertext-only.

#include <gtest/gtest.h>

#include <memory>

#include "global/agg_protocols.h"
#include "pds/pds_node.h"

namespace pds {
namespace {

using ac::Action;
using ac::Subject;
using embdb::ColumnType;
using embdb::Schema;
using embdb::Tuple;
using embdb::Value;
using global::AggFunc;
using global::Participant;
using global::PlainAggregate;
using node::PdsNode;

class FleetIntegrationTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 12;

  void SetUp() override {
    crypto::SymmetricKey fleet_key = crypto::KeyFromString("integration");
    Rng rng(99);
    const char* cities[] = {"lyon", "paris", "nice"};

    for (size_t i = 0; i < kNodes; ++i) {
      PdsNode::Config cfg;
      cfg.node_id = i + 1;
      cfg.fleet_key = fleet_key;
      cfg.flash_geometry.page_size = 512;
      cfg.flash_geometry.pages_per_block = 8;
      cfg.flash_geometry.block_count = 256;
      nodes_.push_back(std::make_unique<PdsNode>(cfg));
      PdsNode& node = *nodes_.back();

      Schema bills("bills", {{"id", ColumnType::kUint64, ""},
                             {"city", ColumnType::kString, ""},
                             {"amount", ColumnType::kDouble, ""},
                             {"note", ColumnType::kString, ""}});
      ASSERT_TRUE(node.DefineTable(bills).ok());
      node.policies().AddRule(
          {"owner", Action::kInsert, "bills", {}, std::nullopt});
      node.policies().AddRule(
          {"owner", Action::kRead, "bills", {}, std::nullopt});
      // The agency may share ONLY (city, amount) — not the free-text note.
      node.policies().AddRule({"stats-agency", Action::kShare, "bills",
                               {"city", "amount"}, std::nullopt});

      Subject owner{"owner", "user-" + std::to_string(i)};
      int rows = 2 + static_cast<int>(rng.Uniform(4));
      for (int r = 0; r < rows; ++r) {
        Tuple t = {Value::U64(static_cast<uint64_t>(r)),
                   Value::Str(cities[rng.Uniform(3)]),
                   Value::F64(static_cast<double>(rng.Uniform(10000)) / 100),
                   Value::Str("private free text")};
        ASSERT_TRUE(node.InsertAs(owner, "bills", t).ok());
      }
    }
  }

  /// Builds protocol participants through the policy-checked export path.
  Result<std::vector<Participant>> ExportFleet(const Subject& subject) {
    std::vector<Participant> participants;
    for (auto& node : nodes_) {
      std::vector<std::pair<std::string, double>> exported;
      PDS_RETURN_IF_ERROR(
          node->ExportAs(subject, "bills", "city", "amount", &exported));
      Participant p;
      p.token = &node->token();
      for (auto& [city, amount] : exported) {
        p.tuples.push_back({city, amount});
      }
      participants.push_back(std::move(p));
    }
    return participants;
  }

  std::vector<std::unique_ptr<PdsNode>> nodes_;
};

TEST_F(FleetIntegrationTest, AgencyRunsSecureAggregateEndToEnd) {
  auto participants = ExportFleet({"stats-agency", "insee"});
  ASSERT_TRUE(participants.ok()) << participants.status().ToString();

  auto expected = PlainAggregate(*participants, AggFunc::kAvg);
  ASSERT_FALSE(expected.empty());

  global::SecureAggProtocol protocol({/*partition_capacity=*/64});
  auto output = protocol.Execute(*participants, AggFunc::kAvg);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_EQ(output->groups.size(), expected.size());
  for (auto& [city, avg] : expected) {
    EXPECT_NEAR(output->groups[city], avg, 1e-9) << city;
  }
  // The SSI saw only ciphertext, each tuple distinct.
  EXPECT_FALSE(output->leakage.plaintext_groups_visible);
  EXPECT_EQ(output->leakage.distinct_classes,
            output->leakage.tuples_observed);
}

TEST_F(FleetIntegrationTest, UnauthorizedSubjectCannotExport) {
  auto denied = ExportFleet({"advertiser", "acme"});
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(FleetIntegrationTest, EveryExportIsAudited) {
  uint64_t before = nodes_[0]->audit_entries();
  ASSERT_TRUE(ExportFleet({"stats-agency", "insee"}).ok());
  EXPECT_EQ(nodes_[0]->audit_entries(), before + 1);

  auto log = nodes_[0]->ReadAuditLog();
  ASSERT_TRUE(log.ok());
  bool found = false;
  for (const std::string& line : *log) {
    if (line.find("stats-agency") != std::string::npos &&
        line.find("share") != std::string::npos &&
        line.find("ALLOW") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FleetIntegrationTest, TamperedNodeDropsOutOfProtocol) {
  auto participants = ExportFleet({"stats-agency", "insee"});
  ASSERT_TRUE(participants.ok());
  // One token is physically attacked: it zeroizes and the protocol run
  // fails loudly rather than producing partial results.
  nodes_[3]->token().Tamper();
  global::WhiteNoiseProtocol protocol({0.2, 1});
  auto output = protocol.Execute(*participants, AggFunc::kSum);
  EXPECT_FALSE(output.ok());

  // Excluding the tampered node, the rest of the fleet still answers.
  std::vector<Participant> healthy;
  for (size_t i = 0; i < participants->size(); ++i) {
    if (i != 3) {
      healthy.push_back((*participants)[i]);
    }
  }
  auto output2 = protocol.Execute(healthy, AggFunc::kSum);
  ASSERT_TRUE(output2.ok());
  auto expected = PlainAggregate(healthy, AggFunc::kSum);
  for (auto& [city, sum] : expected) {
    EXPECT_NEAR(output2->groups[city], sum, 1e-9);
  }
}

TEST_F(FleetIntegrationTest, LocalSqlOverOwnedData) {
  // The owner can also drive the node's database through the SQL surface.
  int rows = 0;
  Status s = nodes_[0]->db().Query(
      "SELECT city, amount FROM bills WHERE amount >= 0.0",
      [&](const Tuple& t) {
        EXPECT_EQ(t.size(), 2u);
        ++rows;
        return Status::Ok();
      });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(rows, 0);
}

}  // namespace
}  // namespace pds
