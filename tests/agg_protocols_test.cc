#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "global/agg_protocols.h"
#include "global/integrity.h"

namespace pds::global {
namespace {

class AggProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crypto::SymmetricKey fleet_key = crypto::KeyFromString("fleet-test");
    for (uint64_t i = 0; i < 8; ++i) {
      mcu::SecureToken::Config cfg;
      cfg.token_id = i;
      cfg.fleet_key = fleet_key;
      cfg.rng_seed = 100 + i;
      tokens_.push_back(std::make_unique<mcu::SecureToken>(cfg));
    }
    // Deterministic tuples: groups city-0..city-4, values derived from i.
    Rng rng(55);
    for (uint64_t i = 0; i < 8; ++i) {
      Participant p;
      p.token = tokens_[i].get();
      int tuples = 5 + static_cast<int>(rng.Uniform(10));
      for (int t = 0; t < tuples; ++t) {
        SourceTuple st;
        st.group = "city-" + std::to_string(rng.Uniform(5));
        st.value = static_cast<double>(rng.Uniform(100));
        p.tuples.push_back(std::move(st));
      }
      participants_.push_back(std::move(p));
    }
  }

  void CheckMatchesPlain(AggregationProtocol* protocol, AggFunc func) {
    auto expected = PlainAggregate(participants_, func);
    auto output = protocol->Execute(participants_, func);
    ASSERT_TRUE(output.ok()) << output.status().ToString();
    ASSERT_EQ(output->groups.size(), expected.size());
    for (auto& [group, value] : expected) {
      ASSERT_TRUE(output->groups.count(group)) << group;
      EXPECT_NEAR(output->groups[group], value, 1e-9) << group;
    }
  }

  std::vector<std::unique_ptr<mcu::SecureToken>> tokens_;
  std::vector<Participant> participants_;
};

TEST_F(AggProtocolTest, SecureAggSum) {
  SecureAggProtocol protocol({/*partition_capacity=*/16});
  CheckMatchesPlain(&protocol, AggFunc::kSum);
}

TEST_F(AggProtocolTest, SecureAggCountAndAvg) {
  SecureAggProtocol protocol({16});
  CheckMatchesPlain(&protocol, AggFunc::kCount);
  CheckMatchesPlain(&protocol, AggFunc::kAvg);
}

TEST_F(AggProtocolTest, SecureAggLeaksNothingButCount) {
  SecureAggProtocol protocol({16});
  auto output = protocol.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(output.ok());
  // Non-deterministic encryption: every observed tuple is its own class.
  EXPECT_EQ(output->leakage.distinct_classes,
            output->leakage.tuples_observed);
  EXPECT_FALSE(output->leakage.plaintext_groups_visible);
  EXPECT_DOUBLE_EQ(output->leakage.MaxClassFraction(),
                   1.0 / static_cast<double>(output->leakage.tuples_observed));
}

TEST_F(AggProtocolTest, SecureAggUsesMultipleRounds) {
  SecureAggProtocol small({8});
  auto output = small.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(output.ok());
  EXPECT_GT(output->metrics.rounds, 2u);

  SecureAggProtocol large({100000});
  auto output2 = large.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(output2.ok());
  EXPECT_LE(output2->metrics.rounds, 2u);
  // Fewer rounds -> less token work.
  EXPECT_LT(output2->metrics.token_crypto_ops,
            output->metrics.token_crypto_ops);
}

TEST_F(AggProtocolTest, SecureAggRejectsImpossibleCapacity) {
  // Capacity below the distinct group count cannot converge.
  SecureAggProtocol protocol({2});
  auto output = protocol.Execute(participants_, AggFunc::kSum);
  EXPECT_EQ(output.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AggProtocolTest, WhiteNoiseSumCountAvg) {
  WhiteNoiseProtocol protocol({/*noise_ratio=*/0.3, /*noise_seed=*/3});
  CheckMatchesPlain(&protocol, AggFunc::kSum);
  CheckMatchesPlain(&protocol, AggFunc::kCount);
  CheckMatchesPlain(&protocol, AggFunc::kAvg);
}

TEST_F(AggProtocolTest, WhiteNoiseInflatesObservedClasses) {
  WhiteNoiseProtocol noisy({1.0, 3});
  WhiteNoiseProtocol quiet({0.0, 3});
  auto noisy_out = noisy.Execute(participants_, AggFunc::kSum);
  auto quiet_out = quiet.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(noisy_out.ok());
  ASSERT_TRUE(quiet_out.ok());
  // Without noise the SSI sees exactly the true number of groups.
  EXPECT_EQ(quiet_out->leakage.distinct_classes, 5u);
  // With noise it sees many more classes and more tuples.
  EXPECT_GT(noisy_out->leakage.distinct_classes, 5u);
  EXPECT_GT(noisy_out->leakage.tuples_observed,
            quiet_out->leakage.tuples_observed);
  EXPECT_FALSE(noisy_out->leakage.plaintext_groups_visible);
}

TEST_F(AggProtocolTest, WhiteNoiseSingleRound) {
  WhiteNoiseProtocol protocol({0.2, 3});
  auto output = protocol.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->metrics.rounds, 2u);  // send + aggregate
}

TEST_F(AggProtocolTest, DomainNoiseSum) {
  DomainNoiseProtocol::Config cfg;
  for (int i = 0; i < 5; ++i) {
    cfg.domain.push_back("city-" + std::to_string(i));
  }
  // Extra domain values nobody has: the SSI must not distinguish them.
  cfg.domain.push_back("city-ghost");
  DomainNoiseProtocol protocol(cfg);
  CheckMatchesPlain(&protocol, AggFunc::kSum);
  CheckMatchesPlain(&protocol, AggFunc::kAvg);
}

TEST_F(AggProtocolTest, DomainNoiseFlattensHistogram) {
  DomainNoiseProtocol::Config cfg;
  for (int i = 0; i < 5; ++i) {
    cfg.domain.push_back("city-" + std::to_string(i));
  }
  cfg.fakes_per_value = 20;  // strong flattening
  DomainNoiseProtocol noisy(cfg);
  WhiteNoiseProtocol bare({0.0, 3});

  auto noisy_out = noisy.Execute(participants_, AggFunc::kSum);
  auto bare_out = bare.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(noisy_out.ok());
  ASSERT_TRUE(bare_out.ok());
  // The dominant class is a smaller fraction under domain noise.
  EXPECT_LT(noisy_out->leakage.MaxClassFraction(),
            bare_out->leakage.MaxClassFraction());
  // And the entropy of the SSI's view is closer to uniform (higher).
  EXPECT_GT(noisy_out->leakage.ClassEntropyBits(),
            bare_out->leakage.ClassEntropyBits() - 0.2);
}

TEST_F(AggProtocolTest, DomainNoiseRejectsOutOfDomainGroup) {
  DomainNoiseProtocol::Config cfg;
  cfg.domain = {"not-a-city"};
  DomainNoiseProtocol protocol(cfg);
  auto output = protocol.Execute(participants_, AggFunc::kSum);
  EXPECT_EQ(output.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AggProtocolTest, HistogramSumCountAvg) {
  HistogramProtocol protocol({/*num_buckets=*/4});
  CheckMatchesPlain(&protocol, AggFunc::kSum);
  CheckMatchesPlain(&protocol, AggFunc::kCount);
  CheckMatchesPlain(&protocol, AggFunc::kAvg);
}

TEST_F(AggProtocolTest, HistogramLeaksOnlyBuckets) {
  HistogramProtocol protocol({3});
  auto output = protocol.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(output.ok());
  EXPECT_LE(output->leakage.distinct_classes, 3u);
  EXPECT_FALSE(output->leakage.plaintext_groups_visible);
}

TEST_F(AggProtocolTest, BucketCountTradesLeakageForTokenWork) {
  HistogramProtocol coarse({1});
  HistogramProtocol fine({64});
  auto coarse_out = coarse.Execute(participants_, AggFunc::kSum);
  auto fine_out = fine.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(coarse_out.ok());
  ASSERT_TRUE(fine_out.ok());
  // More buckets -> the SSI's view has more classes (more leakage).
  EXPECT_GE(fine_out->leakage.distinct_classes,
            coarse_out->leakage.distinct_classes);
}

PackedPaillierProtocol::Config PackedCfg() {
  PackedPaillierProtocol::Config cfg;
  for (int i = 0; i < 5; ++i) {
    cfg.domain.push_back("city-" + std::to_string(i));
  }
  // Up to ~14 tuples of value <= 99 per participant per group.
  cfg.max_slot_value = 4096;
  cfg.paillier_bits = 256;  // fast test keypair; the scheme is size-agnostic
  return cfg;
}

TEST_F(AggProtocolTest, PackedPaillierSumCountAvg) {
  PackedPaillierProtocol protocol(PackedCfg());
  CheckMatchesPlain(&protocol, AggFunc::kSum);
  CheckMatchesPlain(&protocol, AggFunc::kCount);
  CheckMatchesPlain(&protocol, AggFunc::kAvg);
}

TEST_F(AggProtocolTest, PackedPaillierLeaksOnlyFleetSize) {
  PackedPaillierProtocol protocol(PackedCfg());
  auto output = protocol.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  // One non-deterministic ciphertext per participant: the SSI sees the
  // fleet size and nothing else.
  EXPECT_EQ(output->leakage.tuples_observed, participants_.size());
  EXPECT_EQ(output->leakage.distinct_classes, participants_.size());
  EXPECT_FALSE(output->leakage.plaintext_groups_visible);
}

TEST_F(AggProtocolTest, PackedPaillierSingleRoundFleetPlusOneOps) {
  PackedPaillierProtocol protocol(PackedCfg());
  auto output = protocol.Execute(participants_, AggFunc::kSum);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->metrics.rounds, 1u);
  // One packed encryption per token + one querier decrypt-unpack, however
  // many groups the domain has.
  EXPECT_EQ(output->metrics.token_crypto_ops, participants_.size() + 1);
  EXPECT_EQ(output->metrics.ssi_ops, participants_.size() - 1);
}

TEST_F(AggProtocolTest, PackedPaillierRejectsOutOfDomainGroup) {
  PackedPaillierProtocol::Config cfg = PackedCfg();
  cfg.domain = {"not-a-city"};
  PackedPaillierProtocol protocol(cfg);
  auto output = protocol.Execute(participants_, AggFunc::kSum);
  EXPECT_EQ(output.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AggProtocolTest, PackedPaillierRejectsNonIntegerValues) {
  participants_[2].tuples[0].value = 1.5;
  PackedPaillierProtocol protocol(PackedCfg());
  auto output = protocol.Execute(participants_, AggFunc::kSum);
  EXPECT_EQ(output.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AggProtocolTest, EmptyParticipantsRejected) {
  std::vector<Participant> none;
  SecureAggProtocol p1({16});
  EXPECT_FALSE(p1.Execute(none, AggFunc::kSum).ok());
  WhiteNoiseProtocol p2({0.1, 1});
  EXPECT_FALSE(p2.Execute(none, AggFunc::kSum).ok());
  HistogramProtocol p3({4});
  EXPECT_FALSE(p3.Execute(none, AggFunc::kSum).ok());
}

TEST_F(AggProtocolTest, ParticipantWithNoTuples) {
  participants_[3].tuples.clear();
  SecureAggProtocol protocol({32});
  CheckMatchesPlain(&protocol, AggFunc::kSum);
}

TEST_F(AggProtocolTest, MetricsInvariantsHoldForEveryProtocol) {
  // Every message the [TNP14] protocols account crosses the single
  // token <-> SSI link in exactly one direction, so the directional split
  // must always re-sum to the total — and any run has at least one round.
  SecureAggProtocol secure({16});
  WhiteNoiseProtocol white({0.3, 3});
  DomainNoiseProtocol::Config dn_cfg;
  for (int i = 0; i < 5; ++i) {
    dn_cfg.domain.push_back("city-" + std::to_string(i));
  }
  DomainNoiseProtocol domain(dn_cfg);
  HistogramProtocol histogram({4});
  PackedPaillierProtocol packed(PackedCfg());
  AggregationProtocol* protocols[] = {&secure, &white, &domain, &histogram,
                                      &packed};
  for (AggregationProtocol* protocol : protocols) {
    auto output = protocol->Execute(participants_, AggFunc::kSum);
    ASSERT_TRUE(output.ok()) << protocol->name() << ": "
                             << output.status().ToString();
    const Metrics& m = output->metrics;
    EXPECT_EQ(m.bytes, m.bytes_token_to_ssi + m.bytes_ssi_to_token)
        << protocol->name();
    EXPECT_GT(m.rounds, 0u) << protocol->name();
    EXPECT_GT(m.bytes_token_to_ssi, 0u) << protocol->name();
    EXPECT_GT(m.messages, 0u) << protocol->name();
    // In-process protocols model always-connected tokens.
    EXPECT_EQ(m.tokens_missing, 0u) << protocol->name();
  }
}

class IntegrityTest : public ::testing::Test {
 protected:
  IntegrityTest() {
    mcu::SecureToken::Config cfg;
    cfg.token_id = 1;
    cfg.fleet_key = crypto::KeyFromString("fleet");
    producer_ = std::make_unique<mcu::SecureToken>(cfg);
    cfg.token_id = 2;
    verifier_ = std::make_unique<mcu::SecureToken>(cfg);
  }

  Result<std::vector<SealedTuple>> MakeBatch(uint64_t participant, int n) {
    std::vector<Bytes> cts;
    for (int i = 0; i < n; ++i) {
      std::string payload = "tuple-" + std::to_string(i);
      PDS_ASSIGN_OR_RETURN(
          Bytes ct, producer_->EncryptNonDet(ByteView(std::string_view(
                        payload))));
      cts.push_back(std::move(ct));
    }
    return SealTuples(producer_.get(), participant, cts);
  }

  std::unique_ptr<mcu::SecureToken> producer_;
  std::unique_ptr<mcu::SecureToken> verifier_;
};

TEST_F(IntegrityTest, CleanBatchVerifies) {
  auto batch = MakeBatch(7, 20);
  ASSERT_TRUE(batch.ok());
  auto manifest = MakeManifest(producer_.get(), 7, 20);
  ASSERT_TRUE(manifest.ok());
  auto verdict = VerifyBatch(verifier_.get(), *batch, {*manifest});
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->ok) << verdict->problem;
}

TEST_F(IntegrityTest, DetectsAlteration) {
  auto batch = MakeBatch(7, 20);
  ASSERT_TRUE(batch.ok());
  (*batch)[5].payload_ct[3] ^= 0xFF;
  auto manifest = MakeManifest(producer_.get(), 7, 20);
  auto verdict = VerifyBatch(verifier_.get(), *batch, {*manifest});
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->ok);
  EXPECT_NE(verdict->problem.find("altered"), std::string::npos);
}

TEST_F(IntegrityTest, DetectsDrop) {
  auto batch = MakeBatch(7, 20);
  ASSERT_TRUE(batch.ok());
  batch->erase(batch->begin() + 10);
  auto manifest = MakeManifest(producer_.get(), 7, 20);
  auto verdict = VerifyBatch(verifier_.get(), *batch, {*manifest});
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->ok);
}

TEST_F(IntegrityTest, DetectsDuplication) {
  auto batch = MakeBatch(7, 20);
  ASSERT_TRUE(batch.ok());
  batch->push_back((*batch)[0]);
  auto manifest = MakeManifest(producer_.get(), 7, 20);
  auto verdict = VerifyBatch(verifier_.get(), *batch, {*manifest});
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->ok);
  EXPECT_NE(verdict->problem.find("duplicated"), std::string::npos);
}

TEST_F(IntegrityTest, DetectsForgedManifest) {
  auto batch = MakeBatch(7, 20);
  ASSERT_TRUE(batch.ok());
  auto manifest = MakeManifest(producer_.get(), 7, 20);
  manifest->tuple_count = 19;  // SSI lies about the count
  auto verdict = VerifyBatch(verifier_.get(), *batch, {*manifest});
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->ok);
  EXPECT_NE(verdict->problem.find("manifest"), std::string::npos);
}

TEST_F(IntegrityTest, DetectsUnknownParticipant) {
  auto batch = MakeBatch(7, 5);
  ASSERT_TRUE(batch.ok());
  auto manifest = MakeManifest(producer_.get(), 8, 5);  // wrong id
  auto verdict = VerifyBatch(verifier_.get(), *batch, {*manifest});
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->ok);
}

TEST_F(IntegrityTest, TamperingSsiActsAtConfiguredRates) {
  auto batch = MakeBatch(7, 1000);
  ASSERT_TRUE(batch.ok());
  TamperingSsi ssi({0.1, 0.05, 0.05, 42});
  auto actions = ssi.Tamper(&*batch);
  EXPECT_NEAR(static_cast<double>(actions.dropped), 100, 40);
  EXPECT_NEAR(static_cast<double>(actions.duplicated), 50, 30);
  EXPECT_NEAR(static_cast<double>(actions.altered), 50, 30);
}

TEST_F(IntegrityTest, AnyTamperingIsDetected) {
  // Sweep tamper rates; whenever the SSI acted, verification must fail.
  for (double rate : {0.001, 0.01, 0.1, 0.5}) {
    auto batch = MakeBatch(7, 500);
    ASSERT_TRUE(batch.ok());
    auto manifest = MakeManifest(producer_.get(), 7, 500);
    TamperingSsi ssi({rate, rate, rate,
                      static_cast<uint64_t>(rate * 10000)});
    auto actions = ssi.Tamper(&*batch);
    auto verdict = VerifyBatch(verifier_.get(), *batch, {*manifest});
    ASSERT_TRUE(verdict.ok());
    if (actions.total() > 0) {
      EXPECT_FALSE(verdict->ok) << "rate " << rate << " actions "
                                << actions.total();
    } else {
      EXPECT_TRUE(verdict->ok);
    }
  }
}

}  // namespace
}  // namespace pds::global
