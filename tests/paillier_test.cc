#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/paillier.h"

namespace pds::crypto {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  // 256-bit modulus keeps tests fast; the scheme is size-agnostic.
  void SetUp() override {
    rng_ = std::make_unique<Rng>(42);
    auto ph = Paillier::Generate(256, rng_.get());
    ASSERT_TRUE(ph.ok()) << ph.status().ToString();
    paillier_ = std::make_unique<Paillier>(std::move(ph).value());
  }

  std::unique_ptr<Rng> rng_;
  std::unique_ptr<Paillier> paillier_;
};

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (uint64_t m : {0ULL, 1ULL, 42ULL, 1000000ULL, 0xFFFFFFFFULL}) {
    auto ct = paillier_->EncryptU64(m, rng_.get());
    ASSERT_TRUE(ct.ok());
    auto pt = paillier_->DecryptU64(*ct);
    ASSERT_TRUE(pt.ok());
    EXPECT_EQ(*pt, m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  auto c1 = paillier_->EncryptU64(7, rng_.get());
  auto c2 = paillier_->EncryptU64(7, rng_.get());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_FALSE(*c1 == *c2);
}

TEST_F(PaillierTest, HomomorphicAddition) {
  auto c1 = paillier_->EncryptU64(1234, rng_.get());
  auto c2 = paillier_->EncryptU64(8766, rng_.get());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  BigInt sum_ct = paillier_->AddCiphertexts(*c1, *c2);
  auto sum = paillier_->DecryptU64(sum_ct);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 10000u);
}

TEST_F(PaillierTest, HomomorphicSumOfMany) {
  // The SSI-side aggregation the tutorial's Part III describes: sum 50
  // encrypted contributions without decrypting any of them.
  uint64_t expected = 0;
  BigInt acc;
  bool first = true;
  Rng value_rng(7);
  for (int i = 0; i < 50; ++i) {
    uint64_t v = value_rng.Uniform(1000);
    expected += v;
    auto ct = paillier_->EncryptU64(v, rng_.get());
    ASSERT_TRUE(ct.ok());
    if (first) {
      acc = *ct;
      first = false;
    } else {
      acc = paillier_->AddCiphertexts(acc, *ct);
    }
  }
  auto sum = paillier_->DecryptU64(acc);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, expected);
}

TEST_F(PaillierTest, AddPlaintext) {
  auto ct = paillier_->EncryptU64(100, rng_.get());
  ASSERT_TRUE(ct.ok());
  BigInt shifted = paillier_->AddPlaintext(*ct, BigInt(23));
  auto pt = paillier_->DecryptU64(shifted);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, 123u);
}

TEST_F(PaillierTest, MulPlaintext) {
  auto ct = paillier_->EncryptU64(21, rng_.get());
  ASSERT_TRUE(ct.ok());
  BigInt doubled = paillier_->MulPlaintext(*ct, BigInt(2));
  auto pt = paillier_->DecryptU64(doubled);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, 42u);
}

TEST_F(PaillierTest, RejectsPlaintextNotBelowModulus) {
  BigInt too_big = paillier_->public_key().n;
  EXPECT_FALSE(paillier_->Encrypt(too_big, rng_.get()).ok());
}

TEST_F(PaillierTest, RejectsOutOfRangeCiphertext) {
  EXPECT_FALSE(paillier_->Decrypt(BigInt::Zero()).ok());
  EXPECT_FALSE(paillier_->Decrypt(paillier_->public_key().n_squared).ok());
}

TEST(PaillierGenerateTest, RejectsTinyModulus) {
  Rng rng(1);
  EXPECT_FALSE(Paillier::Generate(32, &rng).ok());
}

TEST(PaillierGenerateTest, DeterministicGivenSeed) {
  Rng r1(5), r2(5);
  auto p1 = Paillier::Generate(128, &r1);
  auto p2 = Paillier::Generate(128, &r2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->public_key().n, p2->public_key().n);
}

TEST(PaillierGenerateTest, LargeValuesSurviveBigModulus) {
  Rng rng(6);
  auto ph = Paillier::Generate(512, &rng);
  ASSERT_TRUE(ph.ok());
  BigInt big = BigInt::RandomBits(400, &rng);
  auto ct = ph->Encrypt(big, &rng);
  ASSERT_TRUE(ct.ok());
  auto pt = ph->Decrypt(*ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, big);
}

}  // namespace
}  // namespace pds::crypto
