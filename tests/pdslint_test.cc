// Fixture-driven tests for the pdslint analyzer (tools/pdslint). Each rule
// must fire on a known-bad input and stay silent on a known-good one; the
// waiver and baseline machinery must behave as documented.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pdslint.h"

namespace {

using pdslint::AnalyzeFile;
using pdslint::Finding;
using pdslint::Options;
using pdslint::Report;
using pdslint::Rule;

std::string FixturePath(const std::string& rel) {
  return std::string(PDSLINT_FIXTURE_DIR) + "/" + rel;
}

Report Lint(const std::string& rel) {
  std::string path = FixturePath(rel);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  Report report;
  AnalyzeFile(path, buf.str(), Options(), &report);
  return report;
}

std::vector<int> LinesFor(const Report& r, Rule rule) {
  std::vector<int> lines;
  for (const Finding& f : r.findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(PdslintModuleOf, ResolvesSrcAndFixturePaths) {
  EXPECT_EQ(pdslint::ModuleOf("src/embdb/value.cc"), "embdb");
  EXPECT_EQ(pdslint::ModuleOf("/root/repo/src/mcu/ram_gauge.h"), "mcu");
  EXPECT_EQ(pdslint::ModuleOf("tests/pdslint_fixtures/search/x.cc"), "search");
}

TEST(PdslintRamRule, FlagsEveryBadShape) {
  Report r = Lint("embdb/bad_ram.cc");
  std::vector<int> lines = LinesFor(r, Rule::kRamAlloc);
  ASSERT_EQ(lines.size(), 4u) << "new, malloc, loop growth, loop concat";
  // new int[64]; malloc(256); push_back in loop; += "chunk" in loop.
  EXPECT_EQ(lines[0], 9);
  EXPECT_EQ(lines[1], 13);
  EXPECT_EQ(lines[2], 18);
  EXPECT_EQ(lines[3], 24);
}

TEST(PdslintRamRule, SilentOnAccountedReservedOrUnloopedCode) {
  Report r = Lint("embdb/good_ram.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
}

TEST(PdslintRamRule, WaiversSuppressAndAreCounted) {
  Report r = Lint("embdb/waived_ram.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
  ASSERT_EQ(r.waivers.size(), 2u);
  for (const auto& w : r.waivers) {
    EXPECT_TRUE(w.used) << "waiver at line " << w.line << " unused";
    EXPECT_EQ(w.rule, Rule::kRamAlloc);
    EXPECT_FALSE(w.reason.empty());
  }
}

TEST(PdslintRamRule, IgnoresNonEmbeddedModules) {
  // Same bad content, but attributed to a non-embedded module: the tiny-RAM
  // rule must not apply.
  std::ifstream in(FixturePath("embdb/bad_ram.cc"), std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  Report report;
  AnalyzeFile("src/global/bad_ram.cc", buf.str(), Options(), &report);
  EXPECT_TRUE(LinesFor(report, Rule::kRamAlloc).empty());
}

TEST(PdslintObsRule, FlagsLookupsInLoopsAndDynamicSpanNames) {
  Report r = Lint("search/bad_obs.cc");
  std::vector<int> lines = LinesFor(r, Rule::kObsInEmbedded);
  ASSERT_EQ(lines.size(), 3u)
      << "registry lookup in loop, Intern in loop, dynamic span name";
  EXPECT_EQ(lines[0], 10);
  EXPECT_EQ(lines[1], 17);
  EXPECT_EQ(lines[2], 22);
}

TEST(PdslintObsRule, SilentOnPreallocatedInstrumentation) {
  Report r = Lint("search/good_obs.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
}

TEST(PdslintObsRule, IgnoresNonEmbeddedModules) {
  std::ifstream in(FixturePath("search/bad_obs.cc"), std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  Report report;
  AnalyzeFile("src/global/bad_obs.cc", buf.str(), Options(), &report);
  EXPECT_TRUE(LinesFor(report, Rule::kObsInEmbedded).empty());
}

TEST(PdslintFrameRule, FlagsUnboundedDecoderAllocations) {
  Report r = Lint("net/bad_frame.cc");
  std::vector<int> lines = LinesFor(r, Rule::kNetBoundedFrame);
  ASSERT_EQ(lines.size(), 3u) << "reserve, push_back, resize";
  EXPECT_EQ(lines[0], 17);  // names.reserve(n) from a wire count
  EXPECT_EQ(lines[1], 19);  // push_back loop driven by the same count
  EXPECT_EQ(lines[2], 27);  // out.resize(len) from a wire length
}

TEST(PdslintFrameRule, SilentOnBoundCheckedDecoders) {
  Report r = Lint("net/good_frame.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
}

TEST(PdslintFrameRule, IgnoresModulesOutsideNet) {
  // Same unbounded decoders, but attributed to a non-wire module: only net
  // parses untrusted peer bytes, so the rule must not apply.
  std::ifstream in(FixturePath("net/bad_frame.cc"), std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  Report report;
  AnalyzeFile("src/global/bad_frame.cc", buf.str(), Options(), &report);
  EXPECT_TRUE(LinesFor(report, Rule::kNetBoundedFrame).empty());
}

TEST(PdslintNodiscardRule, FlagsUnannotatedDeclarations) {
  Report r = Lint("common/bad_nodiscard.h");
  std::vector<int> lines = LinesFor(r, Rule::kResultNodiscard);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], 9);   // Status Open();
  EXPECT_EQ(lines[1], 10);  // Result<int> Compute() const;
  EXPECT_EQ(lines[2], 11);  // static Status Validate(int);
  EXPECT_EQ(lines[3], 17);  // Status GlobalInit();
}

TEST(PdslintNodiscardRule, SilentOnAnnotatedDeclarations) {
  Report r = Lint("common/good_nodiscard.h");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
}

TEST(PdslintGuardRule, FlagsUnguardedValue) {
  Report r = Lint("global/bad_guard.cc");
  std::vector<int> lines = LinesFor(r, Rule::kResultGuard);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 6);
}

TEST(PdslintGuardRule, SilentOnGuardedValue) {
  Report r = Lint("global/good_guard.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
}

TEST(PdslintHeaderRules, FlagHygieneViolations) {
  Report r = Lint("anon/bad_header.h");
  EXPECT_EQ(LinesFor(r, Rule::kHeaderGuard).size(), 1u);
  ASSERT_EQ(LinesFor(r, Rule::kUsingNamespace).size(), 1u);
  EXPECT_EQ(LinesFor(r, Rule::kUsingNamespace)[0], 6);
  ASSERT_EQ(LinesFor(r, Rule::kGlobalVar).size(), 1u);
  EXPECT_EQ(LinesFor(r, Rule::kGlobalVar)[0], 10);
}

TEST(PdslintHeaderRules, SilentOnHygienicHeader) {
  Report r = Lint("anon/good_header.h");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
}

TEST(PdslintFingerprint, StableAcrossLineShiftsDistinctAcrossOccurrences) {
  Report a = Lint("embdb/bad_ram.cc");
  ASSERT_FALSE(a.findings.empty());

  // Shift the file down by three blank lines: fingerprints must not change.
  std::ifstream in(FixturePath("embdb/bad_ram.cc"), std::ios::binary);
  std::ostringstream buf;
  buf << "\n\n\n" << in.rdbuf();
  Report b;
  AnalyzeFile(FixturePath("embdb/bad_ram.cc"), buf.str(), Options(), &b);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(pdslint::Fingerprint(a.findings[i]),
              pdslint::Fingerprint(b.findings[i]));
    EXPECT_NE(a.findings[i].line, b.findings[i].line);
  }

  // All fingerprints are distinct, even for identical rule/snippet pairs.
  std::set<std::string> prints;
  for (const Finding& f : a.findings) prints.insert(pdslint::Fingerprint(f));
  EXPECT_EQ(prints.size(), a.findings.size());
}

TEST(PdslintRuleNames, RoundTrip) {
  for (Rule rule : {Rule::kRamAlloc, Rule::kResultNodiscard,
                    Rule::kResultGuard, Rule::kHeaderGuard,
                    Rule::kUsingNamespace, Rule::kGlobalVar,
                    Rule::kObsInEmbedded, Rule::kNetBoundedFrame,
                    Rule::kSecretFlow, Rule::kConstTime}) {
    Rule parsed;
    ASSERT_TRUE(pdslint::ParseRuleName(pdslint::RuleName(rule), &parsed));
    EXPECT_EQ(parsed, rule);
  }
  Rule parsed;
  EXPECT_TRUE(pdslint::ParseRuleName("ram", &parsed));
  EXPECT_EQ(parsed, Rule::kRamAlloc);
  EXPECT_TRUE(pdslint::ParseRuleName("obs", &parsed));
  EXPECT_EQ(parsed, Rule::kObsInEmbedded);
  EXPECT_TRUE(pdslint::ParseRuleName("frame", &parsed));
  EXPECT_EQ(parsed, Rule::kNetBoundedFrame);
  EXPECT_TRUE(pdslint::ParseRuleName("secret", &parsed));
  EXPECT_EQ(parsed, Rule::kSecretFlow);
  EXPECT_TRUE(pdslint::ParseRuleName("ct", &parsed));
  EXPECT_EQ(parsed, Rule::kConstTime);
  EXPECT_FALSE(pdslint::ParseRuleName("no-such-rule", &parsed));
}

// ---------------------------------------------------------------------------
// secret-flow
// ---------------------------------------------------------------------------

TEST(PdslintSecretFlow, FlagsEveryLeakShape) {
  Report r = Lint("net/bad_secret_flow.cc");
  std::vector<int> lines = LinesFor(r, Rule::kSecretFlow);
  std::vector<int> expected{27, 33, 40, 46, 53, 61, 72, 77, 82, 88, 96, 103};
  ASSERT_EQ(lines.size(), expected.size())
      << "direct sink, assignment, member write, decrypt output, container "
         "insert, range-for binding, secret-returning call, printf, stream, "
         "secret param, compound assignment, ASSIGN_OR_RETURN macro";
  EXPECT_EQ(lines, expected);
}

TEST(PdslintSecretFlow, SilentOnSanitizedOrDeclassifiedFlows) {
  Report r = Lint("net/good_secret_flow.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
  // The one declassify waiver must be attributed to the rule, carry its
  // reason, and actually suppress something (the tainted fingerprint send).
  ASSERT_EQ(r.waivers.size(), 1u);
  EXPECT_EQ(r.waivers[0].rule, Rule::kSecretFlow);
  EXPECT_TRUE(r.waivers[0].used);
  EXPECT_FALSE(r.waivers[0].reason.empty());
}

TEST(PdslintSecretFlow, CatchesPlantedFleetKeyFrameLeak) {
  // The acceptance leak: a SymmetricKey fleet key (built-in seed, no
  // annotation) serialized into a net frame encoder.
  Report r = Lint("net/leak_secret_frame.cc");
  std::vector<int> lines = LinesFor(r, Rule::kSecretFlow);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 25);
  EXPECT_NE(r.findings[0].message.find("EncodeHello"), std::string::npos);
}

TEST(PdslintSecretFlow, CatchesCiphertextCopiedIntoDiagnosticLog) {
  // The adversarial-reply leak: a tampering-diagnosis helper folds a
  // secret-annotated ciphertext into the diagnostic string it prints.
  // Detection tooling must not become the exfiltration path.
  Report r = Lint("net/leak_adversarial_log.cc");
  std::vector<int> lines = LinesFor(r, Rule::kSecretFlow);
  ASSERT_GE(lines.size(), 1u);
  bool print_flagged = false;
  for (size_t i = 0; i < r.findings.size(); ++i) {
    if (r.findings[i].rule == Rule::kSecretFlow &&
        r.findings[i].message.find("log/print") != std::string::npos) {
      print_flagged = true;
    }
  }
  EXPECT_TRUE(print_flagged) << pdslint::FormatFinding(r.findings.front());
}

TEST(PdslintSecretFlow, CatchesKeyMaterialFoldedIntoTraceId) {
  // The distributed-tracing leak: fleet-key bytes folded into a trace_id
  // that flows into the trace-context attacher. Trace ids travel cleartext
  // on every traced frame, so AttachTraceContext is a sink like the payload
  // encoders — the real codepath seeds trace ids from the non-secret RNG.
  Report r = Lint("net/leak_trace_id.cc");
  std::vector<int> lines = LinesFor(r, Rule::kSecretFlow);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 38);
  EXPECT_NE(r.findings[0].message.find("AttachTraceContext"),
            std::string::npos);
}

TEST(PdslintSecretFlow, CatchesCiphertextInSimEventRecord) {
  // The simulator leak: a secret-annotated Paillier ciphertext copied into
  // the per-link event record and handed to the record sink. The sim event
  // log is dumped wholesale by bench tooling, so it must only ever carry
  // frame sizes and kinds — never payload bytes.
  Report r = Lint("sim/leak_event_record.cc");
  std::vector<int> lines = LinesFor(r, Rule::kSecretFlow);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 35);
  EXPECT_NE(r.findings[0].message.find("RecordEvent"), std::string::npos);
}

TEST(PdslintSimModule, SilentOnMetadataOnlyEventLog) {
  // The sim module is under the embedded-RAM and secret-flow rules like
  // net: a metadata-only event log with reserve-bounded growth is the
  // idiom src/sim actually uses and must stay silent.
  Report r = Lint("sim/good_event_record.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
}

TEST(PdslintSimModule, SimIsUnderTheEmbeddedAndFramedRules) {
  Options opts;
  auto has = [](const std::vector<std::string>& v, const char* m) {
    return std::find(v.begin(), v.end(), m) != v.end();
  };
  EXPECT_TRUE(has(opts.embedded_modules, "sim"));
  EXPECT_TRUE(has(opts.nodiscard_modules, "sim"));
  EXPECT_TRUE(has(opts.framed_modules, "sim"));
}

TEST(PdslintSecretFlow, FlagsAnySecretInSsiCompiledCode) {
  Report r = Lint("net/ssi_server_bad.cc");
  std::vector<int> lines = LinesFor(r, Rule::kSecretFlow);
  std::vector<int> expected{23, 24, 25, 29, 30, 31, 38};
  ASSERT_EQ(lines.size(), expected.size())
      << "decrypt + its uses, fleet key + its uses, secret param (even "
         "behind a sanitizer the SSI must not hold the key)";
  EXPECT_EQ(lines, expected);
}

TEST(PdslintSecretFlow, SilentOnCiphertextOnlySsiCode) {
  Report r = Lint("net/ssi_server_good.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
  ASSERT_EQ(r.waivers.size(), 1u);
  EXPECT_EQ(r.waivers[0].rule, Rule::kSecretFlow);
  EXPECT_TRUE(r.waivers[0].used) << "declassify on the aggregate decrypt";
}

TEST(PdslintSecretFlow, PropagatesThroughHelperReturnsAcrossFiles) {
  // keys.cc returns a decrypt output; wire.cc (a different file in the same
  // module) sends that helper's result to a sink. Only the cross-file index
  // can see the flow.
  const std::string keys_path = "src/net/keys.cc";
  const std::string keys =
      "using Bytes = int;\n"
      "Bytes DecryptSealedBlob(Bytes sealed);\n"
      "Bytes LoadFleetKey(Bytes sealed) {\n"
      "  Bytes k = DecryptSealedBlob(sealed);\n"
      "  return k;\n"
      "}\n";
  const std::string wire_path = "src/net/wire.cc";
  const std::string wire =
      "using Bytes = int;\n"
      "// pdslint: sink(EncodeFrame)\n"
      "Bytes EncodeFrame(Bytes payload);\n"
      "Bytes LoadFleetKey(Bytes sealed);\n"
      "Bytes Handle(Bytes sealed) {\n"
      "  Bytes key = LoadFleetKey(sealed);\n"
      "  return EncodeFrame(key);\n"
      "}\n";
  Options options;
  pdslint::SourceIndex index =
      pdslint::BuildIndex({{keys_path, keys}, {wire_path, wire}}, options);
  Report cross;
  AnalyzeFile(wire_path, wire, options, index, &cross);
  std::vector<int> lines = LinesFor(cross, Rule::kSecretFlow);
  ASSERT_EQ(lines.size(), 1u) << "LoadFleetKey must be inferred secret";
  EXPECT_EQ(lines[0], 7);

  // Without keys.cc in the index the helper is opaque and nothing fires.
  Report solo;
  AnalyzeFile(wire_path, wire, options, &solo);
  EXPECT_TRUE(LinesFor(solo, Rule::kSecretFlow).empty());
}

// ---------------------------------------------------------------------------
// const-time
// ---------------------------------------------------------------------------

TEST(PdslintConstTime, FlagsEveryLeakShape) {
  Report r = Lint("crypto/montgomery_bad.cc");
  std::vector<int> lines = LinesFor(r, Rule::kConstTime);
  std::vector<int> expected{17, 28, 39, 50, 59, 68, 75, 83, 93, 100, 110, 111};
  ASSERT_EQ(lines.size(), expected.size())
      << "if/while/for/switch on secret, early exits, ternary, table loads, "
         "propagated locals, zero-digit skip loop";
  EXPECT_EQ(lines, expected);
}

TEST(PdslintConstTime, SilentOnBranchlessKernels) {
  Report r = Lint("crypto/montgomery_good.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
  ASSERT_EQ(r.waivers.size(), 1u);
  EXPECT_EQ(r.waivers[0].rule, Rule::kConstTime);
  EXPECT_TRUE(r.waivers[0].used) << "reasoned exempt on the digit-0 skip";
  EXPECT_FALSE(r.waivers[0].reason.empty());
}

TEST(PdslintConstTime, CatchesPlantedLeakyLadder) {
  // The acceptance leak: a square-and-multiply ladder whose multiply step
  // branches on the secret exponent bit.
  Report r = Lint("crypto/montgomery_leak.cc");
  std::vector<int> lines = LinesFor(r, Rule::kConstTime);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 21);
  EXPECT_NE(r.findings[0].message.find("secret-dependent"),
            std::string::npos);
}

TEST(PdslintConstTime, ScopedToKernelFiles) {
  // The same leaky shapes outside montgomery*/bigint* files are not under
  // the rule (general crypto code may branch on secrets it then discards).
  std::ifstream in(FixturePath("crypto/montgomery_bad.cc"),
                   std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  Report report;
  AnalyzeFile("src/crypto/paillier_extras.cc", buf.str(), Options(),
              &report);
  EXPECT_TRUE(LinesFor(report, Rule::kConstTime).empty());
}

// ---------------------------------------------------------------------------
// net-bounded-frame: packed-aggregate path
// ---------------------------------------------------------------------------

TEST(PdslintFrameRule, FlagsUnboundedPackedPath) {
  Report r = Lint("net/bad_packed_frame.cc");
  std::vector<int> lines = LinesFor(r, Rule::kNetBoundedFrame);
  ASSERT_EQ(lines.size(), 2u)
      << "FromBytes before the ciphertext bound; resize before the slot "
         "bound";
  EXPECT_EQ(lines[0], 35);
  EXPECT_EQ(lines[1], 47);
  EXPECT_NE(r.findings[0].message.find("kMaxPacked"), std::string::npos);
  EXPECT_NE(r.findings[1].message.find("kMaxPackedSlots"),
            std::string::npos);
}

TEST(PdslintFrameRule, SilentOnBoundedPackedPath) {
  Report r = Lint("net/good_packed_frame.cc");
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
}

// ---------------------------------------------------------------------------
// Waiver hygiene over the real tree
// ---------------------------------------------------------------------------

TEST(PdslintWaiverHygiene, RepoTreeIsCleanAndEveryWaiverIsReasonedAndUsed) {
  // The tree the lint CI job scans must stay finding-free, every waiver must
  // carry a non-empty reason and suppress a real would-be finding, and the
  // count must fit the first line of .lint-budget (growing the waiver count
  // requires bumping that file in the same commit).
  std::string repo(PDSLINT_REPO_DIR);
  Report r = pdslint::AnalyzeTree(
      {repo + "/src", repo + "/examples/ssi_demo.cpp"}, Options());
  EXPECT_TRUE(r.findings.empty())
      << pdslint::FormatFinding(r.findings.front());
  int secret_or_ct = 0;
  for (const auto& w : r.waivers) {
    EXPECT_FALSE(w.reason.empty())
        << w.file << ":" << w.line << " waiver has no reason";
    EXPECT_TRUE(w.used) << w.file << ":" << w.line << " waiver is stale";
    if (w.rule == Rule::kSecretFlow || w.rule == Rule::kConstTime) {
      ++secret_or_ct;
    }
  }
  std::ifstream budget_in(repo + "/.lint-budget");
  int budget = -1;
  budget_in >> budget;
  ASSERT_GT(budget, 0) << "unreadable .lint-budget";
  EXPECT_LE(static_cast<int>(r.waivers.size()), budget);
  // The issue caps the two new rules at 6 reasoned waivers inside src/;
  // the demo adds two provisioning declassifies on top.
  EXPECT_LE(secret_or_ct, 8);
}

}  // namespace
