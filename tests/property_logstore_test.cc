// Property tests (parameterized sweeps) for the log-store layer: for every
// flash geometry and record-size profile, a RecordLog must reproduce the
// exact write sequence via both the streaming reader and random access,
// and the external sorter must sort like std::sort.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"
#include "flash/flash.h"
#include "logstore/external_sort.h"
#include "logstore/sequential_log.h"
#include "mcu/ram_gauge.h"

namespace pds::logstore {
namespace {

// (page_size, pages_per_block, max_record_size, num_records)
using LogParam = std::tuple<uint32_t, uint32_t, size_t, int>;

class RecordLogProperty : public ::testing::TestWithParam<LogParam> {};

TEST_P(RecordLogProperty, RoundTripAllAccessPaths) {
  auto [page_size, ppb, max_record, num_records] = GetParam();
  flash::Geometry g;
  g.page_size = page_size;
  g.pages_per_block = ppb;
  // Size the chip generously for the workload.
  uint64_t bytes_needed =
      static_cast<uint64_t>(num_records) * (max_record + 4) * 2;
  g.block_count = static_cast<uint32_t>(
      bytes_needed / (static_cast<uint64_t>(page_size) * ppb) + 4);
  flash::FlashChip chip(g);
  flash::PartitionAllocator alloc(&chip);
  auto part = alloc.Allocate(g.block_count - 1);
  ASSERT_TRUE(part.ok());

  RecordLog log(*part);
  Rng rng(page_size ^ static_cast<uint64_t>(num_records));
  std::vector<Bytes> written;
  std::vector<uint64_t> addresses;
  for (int i = 0; i < num_records; ++i) {
    Bytes record(rng.Uniform(max_record + 1));
    rng.FillBytes(record.data(), record.size());
    auto addr = log.Append(ByteView(record));
    ASSERT_TRUE(addr.ok()) << "record " << i;
    written.push_back(std::move(record));
    addresses.push_back(*addr);
  }
  ASSERT_EQ(log.num_records(), static_cast<uint64_t>(num_records));

  // Path 1: streaming reader reproduces the sequence.
  auto reader = log.NewReader();
  Bytes rec;
  for (int i = 0; i < num_records; ++i) {
    ASSERT_FALSE(reader.AtEnd());
    ASSERT_TRUE(reader.Next(&rec).ok());
    EXPECT_EQ(rec, written[i]) << "stream record " << i;
  }
  EXPECT_TRUE(reader.AtEnd());

  // Path 2: random access at every address (shuffled order).
  std::vector<int> order(num_records);
  for (int i = 0; i < num_records; ++i) order[i] = i;
  rng.Shuffle(&order);
  for (int i : order) {
    ASSERT_TRUE(log.ReadAt(addresses[i], &rec).ok());
    EXPECT_EQ(rec, written[i]) << "random record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RecordLogProperty,
    ::testing::Values(
        LogParam{128, 4, 20, 200},    // tiny pages, small records
        LogParam{128, 4, 300, 60},    // records span several pages
        LogParam{512, 8, 100, 300},   // mixed
        LogParam{2048, 64, 50, 500},  // realistic NAND geometry
        LogParam{2048, 64, 5000, 40},  // large records on real pages
        LogParam{256, 2, 0, 100}));    // all-empty records

// (ram_budget, num_records) — sorter equivalence with std::sort.
using SortParam = std::tuple<size_t, int>;

class ExternalSortProperty : public ::testing::TestWithParam<SortParam> {};

TEST_P(ExternalSortProperty, SortsLikeStdSort) {
  auto [budget, n] = GetParam();
  flash::Geometry g;
  g.page_size = 256;
  g.pages_per_block = 8;
  g.block_count = 4096;
  flash::FlashChip chip(g);
  flash::PartitionAllocator alloc(&chip);
  mcu::RamGauge gauge(budget + 16 * 1024);

  ExternalSorter::Options opts;
  opts.record_size = 16;
  opts.ram_budget_bytes = budget;
  ExternalSorter sorter(&alloc, opts, &gauge);

  Rng rng(static_cast<uint64_t>(budget) * 31 + n);
  std::vector<Bytes> records;
  for (int i = 0; i < n; ++i) {
    Bytes r(16);
    rng.FillBytes(r.data(), r.size());
    records.push_back(r);
    ASSERT_TRUE(sorter.Add(ByteView(r)).ok());
  }
  std::sort(records.begin(), records.end());

  size_t pos = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](ByteView rec) {
                    EXPECT_LT(pos, records.size());
                    EXPECT_TRUE(ByteView(records[pos]) == rec)
                        << "position " << pos;
                    ++pos;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(pos, records.size());
  EXPECT_EQ(gauge.in_use(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndSizes, ExternalSortProperty,
    ::testing::Combine(::testing::Values(512, 1024, 8192, 65536),
                       ::testing::Values(0, 1, 100, 2000, 10000)));

}  // namespace
}  // namespace pds::logstore
