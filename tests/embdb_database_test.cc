#include <gtest/gtest.h>

#include <set>

#include "embdb/database.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {
namespace {

flash::Geometry DbGeometry() {
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 2048;
  return g;
}

Schema CitySchema() {
  return Schema("people", {{"id", ColumnType::kUint64, ""},
                           {"city", ColumnType::kString, ""},
                           {"age", ColumnType::kInt64, ""}});
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : chip_(DbGeometry()), gauge_(128 * 1024),
                   db_(&chip_, &gauge_) {}

  Tuple Row(uint64_t id, const std::string& city, int64_t age) {
    return {Value::U64(id), Value::Str(city), Value::I64(age)};
  }

  flash::FlashChip chip_;
  mcu::RamGauge gauge_;
  Database db_;
};

TEST_F(DatabaseTest, CreateAndInsert) {
  ASSERT_TRUE(db_.CreateTable(CitySchema(), {}).ok());
  auto rowid = db_.Insert("people", Row(1, "lyon", 30));
  ASSERT_TRUE(rowid.ok());
  EXPECT_EQ(*rowid, 0u);
  EXPECT_EQ(db_.table("people")->num_rows(), 1u);
}

TEST_F(DatabaseTest, DuplicateTableRejected) {
  ASSERT_TRUE(db_.CreateTable(CitySchema(), {}).ok());
  EXPECT_EQ(db_.CreateTable(CitySchema(), {}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DatabaseTest, InsertIntoMissingTable) {
  EXPECT_EQ(db_.Insert("ghost", Row(1, "x", 1)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(DatabaseTest, SelectScanWithPredicates) {
  ASSERT_TRUE(db_.CreateTable(CitySchema(), {}).ok());
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_.Insert("people",
                           Row(i, i % 3 == 0 ? "lyon" : "paris",
                               static_cast<int64_t>(20 + i % 50)))
                    .ok());
  }
  Predicate city_eq{1, Predicate::Op::kEq, Value::Str("lyon")};
  Predicate age_lt{2, Predicate::Op::kLt, Value::I64(30)};
  int count = 0;
  ASSERT_TRUE(db_.SelectScan("people", {city_eq, age_lt},
                             [&](uint64_t, const Tuple& t) {
                               EXPECT_EQ(t[1].AsStr(), "lyon");
                               EXPECT_LT(t[2].AsI64(), 30);
                               ++count;
                               return Status::Ok();
                             })
                  .ok());
  EXPECT_GT(count, 0);
}

TEST_F(DatabaseTest, IndexMaintainedOnInsert) {
  ASSERT_TRUE(db_.CreateTable(CitySchema(), {}).ok());
  ASSERT_TRUE(db_.CreateKeyIndex("people", "city", {}).ok());
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        db_.Insert("people", Row(i, "city-" + std::to_string(i % 20),
                                 static_cast<int64_t>(i)))
            .ok());
  }
  std::set<uint64_t> rowids;
  ASSERT_TRUE(db_.SelectViaIndex("people", "city", Value::Str("city-7"),
                                 [&](uint64_t rowid, const Tuple& t) {
                                   EXPECT_EQ(t[1].AsStr(), "city-7");
                                   rowids.insert(rowid);
                                   return Status::Ok();
                                 })
                  .ok());
  EXPECT_EQ(rowids.size(), 10u);
}

TEST_F(DatabaseTest, IndexCreationAfterLoadRejected) {
  ASSERT_TRUE(db_.CreateTable(CitySchema(), {}).ok());
  ASSERT_TRUE(db_.Insert("people", Row(1, "lyon", 25)).ok());
  EXPECT_EQ(db_.CreateKeyIndex("people", "city", {}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DatabaseTest, IndexOnMissingColumnRejected) {
  ASSERT_TRUE(db_.CreateTable(CitySchema(), {}).ok());
  EXPECT_EQ(db_.CreateKeyIndex("people", "ghost", {}).code(),
            StatusCode::kNotFound);
}

TEST_F(DatabaseTest, SelectViaIndexWithoutIndexFails) {
  ASSERT_TRUE(db_.CreateTable(CitySchema(), {}).ok());
  EXPECT_EQ(db_.SelectViaIndex("people", "city", Value::Str("x"),
                               [](uint64_t, const Tuple&) {
                                 return Status::Ok();
                               })
                .code(),
            StatusCode::kNotFound);
}

TEST_F(DatabaseTest, ReorganizeThenQueryMergesTreeAndDelta) {
  ASSERT_TRUE(db_.CreateTable(CitySchema(), {}).ok());
  ASSERT_TRUE(db_.CreateKeyIndex("people", "city", {}).ok());
  // Phase 1: 300 rows, then reorganize.
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(db_.Insert("people", Row(i, "city-" + std::to_string(i % 10),
                                         static_cast<int64_t>(i)))
                    .ok());
  }
  ASSERT_TRUE(db_.ReorganizeIndex("people", "city").ok());
  EXPECT_NE(db_.tree_index("people", "city"), nullptr);

  // Phase 2: 100 more rows into the delta.
  for (uint64_t i = 300; i < 400; ++i) {
    ASSERT_TRUE(db_.Insert("people", Row(i, "city-" + std::to_string(i % 10),
                                         static_cast<int64_t>(i)))
                    .ok());
  }

  // Query must see both old (tree) and new (delta) rows: 40 per city.
  std::set<uint64_t> rowids;
  ASSERT_TRUE(db_.SelectViaIndex("people", "city", Value::Str("city-3"),
                                 [&](uint64_t rowid, const Tuple&) {
                                   rowids.insert(rowid);
                                   return Status::Ok();
                                 })
                  .ok());
  EXPECT_EQ(rowids.size(), 40u);
  // Rows from both phases.
  EXPECT_TRUE(rowids.count(3) == 1);
  EXPECT_TRUE(rowids.count(303) == 1);
}

TEST_F(DatabaseTest, DoubleReorganizeRejected) {
  ASSERT_TRUE(db_.CreateTable(CitySchema(), {}).ok());
  ASSERT_TRUE(db_.CreateKeyIndex("people", "city", {}).ok());
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_.Insert("people", Row(i, "c", 1)).ok());
  }
  ASSERT_TRUE(db_.ReorganizeIndex("people", "city").ok());
  EXPECT_EQ(db_.ReorganizeIndex("people", "city").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DatabaseTest, IndexedSelectCheaperThanScanOnLargeTable) {
  Database::TableOptions big;
  big.data_blocks = 64;
  big.directory_blocks = 8;
  ASSERT_TRUE(db_.CreateTable(CitySchema(), big).ok());
  Database::IndexOptions idx;
  idx.keys_blocks = 32;  // 2000 entries * 32 B needs > 8 default blocks
  idx.bloom_blocks = 8;
  ASSERT_TRUE(db_.CreateKeyIndex("people", "city", idx).ok());
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db_.Insert("people",
                           Row(i, "city-" + std::to_string(i % 400),
                               static_cast<int64_t>(i)))
                    .ok());
  }
  ASSERT_TRUE(db_.ReorganizeIndex("people", "city").ok());

  chip_.ResetStats();
  int via_index = 0;
  ASSERT_TRUE(db_.SelectViaIndex("people", "city", Value::Str("city-123"),
                                 [&](uint64_t, const Tuple&) {
                                   ++via_index;
                                   return Status::Ok();
                                 })
                  .ok());
  uint64_t index_reads = chip_.stats().page_reads;

  chip_.ResetStats();
  Predicate p{1, Predicate::Op::kEq, Value::Str("city-123")};
  int via_scan = 0;
  ASSERT_TRUE(db_.SelectScan("people", {p},
                             [&](uint64_t, const Tuple&) {
                               ++via_scan;
                               return Status::Ok();
                             })
                  .ok());
  uint64_t scan_reads = chip_.stats().page_reads;

  EXPECT_EQ(via_index, via_scan);
  EXPECT_LT(index_reads, scan_reads / 2);
}

}  // namespace
}  // namespace pds::embdb
