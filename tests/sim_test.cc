// Unit tests for the discrete-event simulation tier: SimClock ordering and
// virtual time, SimTransport's InProcess-mirroring semantics under a
// LinkModel, and SimFleet driving the real SsiServer/TokenClient protocol
// over pumped sessions. The byte-identity anchor against the in-process
// wire lives in sim_anchor_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/link_model.h"
#include "sim/sim_clock.h"
#include "sim/sim_fleet.h"
#include "sim/sim_transport.h"

namespace pds::sim {
namespace {

Bytes Frame(std::initializer_list<uint8_t> b) { return Bytes(b); }

TEST(SimClockTest, RunsEventsInTimeThenFifoOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.Schedule(300, [&] { order.push_back(3); });
  clock.Schedule(100, [&] { order.push_back(1); });
  clock.Schedule(100, [&] { order.push_back(2); });  // same instant: FIFO
  EXPECT_EQ(clock.next_event_ns(), 100u);
  EXPECT_EQ(clock.pending(), 3u);

  clock.AdvanceTo(100);
  EXPECT_EQ(clock.NowNs(), 100u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);

  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.NowNs(), 1000u);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 3);
  EXPECT_TRUE(clock.idle());
  EXPECT_EQ(clock.events_run(), 3u);
}

TEST(SimClockTest, EventMayScheduleEarlierWorkWithinSameAdvance) {
  SimClock clock;
  std::vector<int> order;
  clock.Schedule(100, [&] {
    order.push_back(1);
    // Due before the advance target: must run in this same pass.
    clock.Schedule(150, [&] { order.push_back(2); });
  });
  clock.AdvanceTo(200);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(clock.NowNs(), 200u);
}

TEST(SimClockTest, PastSchedulesClampToNowAndSleepAdvances) {
  SimClock clock;
  clock.AdvanceTo(500);
  bool ran = false;
  clock.Schedule(10, [&] { ran = true; });  // in the past: runs "now"
  EXPECT_EQ(clock.next_event_ns(), 500u);
  EXPECT_TRUE(clock.RunOne());
  EXPECT_TRUE(ran);
  EXPECT_FALSE(clock.RunOne());

  clock.SleepMs(3);
  EXPECT_EQ(clock.NowNs(), 500u + 3u * 1000000u);
  // Virtual budgets are never scaled by sanitizer de-flaking factors.
  EXPECT_EQ(clock.ScaleBudgetMs(25), 25u);
}

TEST(SimTransportTest, IdealLinkDeliversInstantlyInOrder) {
  SimClock clock;
  SimNet net(&clock, LinkModel{}, 1);
  auto [a, b] = net.CreatePair();
  ASSERT_TRUE(a->Send(Frame({1, 2, 3})).ok());
  ASSERT_TRUE(a->Send(Frame({4, 5})).ok());

  auto r1 = b->Recv(100);
  auto r2 = b->Recv(100);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), Frame({1, 2, 3}));
  EXPECT_EQ(r2.value(), Frame({4, 5}));
  EXPECT_EQ(clock.NowNs(), 0u);  // zero latency: no virtual time passed
  EXPECT_EQ(b->frames_received(), 2u);
  EXPECT_EQ(a->bytes_sent(), 5u);
  EXPECT_EQ(net.stats().frames_delivered, 2u);
}

TEST(SimTransportTest, ErrorSurfaceMirrorsInProcessTransport) {
  SimClock clock;
  SimNet net(&clock, LinkModel{}, 1);
  auto [a, b] = net.CreatePair(/*max_queued=*/2);

  // Deadline with nothing in flight: virtual time jumps to the deadline.
  auto timeout = b->Recv(50);
  ASSERT_FALSE(timeout.ok());
  EXPECT_EQ(timeout.status().ToString(),
            Status::DeadlineExceeded("recv deadline exceeded").ToString());
  EXPECT_EQ(clock.NowNs(), 50u * 1000000u);

  // Queue bound counts in-flight + inbox, like InProcess's max_queued.
  ASSERT_TRUE(a->Send(Frame({1})).ok());
  ASSERT_TRUE(a->Send(Frame({2})).ok());
  auto full = a->Send(Frame({3}));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.ToString(),
            Status::ResourceExhausted("transport queue full").ToString());

  // Queued frames survive close and stay poppable; sends and empty recvs
  // fail with IoError, exactly as InProcess behaves.
  ASSERT_TRUE(b->Recv(10).ok());  // deliver both, pop one
  a->Close();
  EXPECT_TRUE(b->closed());
  EXPECT_TRUE(b->Recv(0).ok());  // pop-after-close
  auto closed_recv = b->Recv(10);
  ASSERT_FALSE(closed_recv.ok());
  EXPECT_EQ(closed_recv.status().ToString(),
            Status::IoError("transport closed").ToString());
  EXPECT_EQ(a->Send(Frame({9})).ToString(),
            Status::IoError("transport closed").ToString());
}

TEST(SimTransportTest, LatencyBandwidthAndDeadlines) {
  LinkModel model;
  model.base_latency_us = 1000;                // 1 ms each way
  model.bandwidth_bytes_per_sec = 1000 * 1000; // 1 MB/s: 100 B = 100 µs
  SimClock clock;
  SimNet net(&clock, model, 1);
  auto [a, b] = net.CreatePair();

  Bytes big(100, 0xab);
  ASSERT_TRUE(a->Send(big).ok());
  // Too early: the frame is still in flight at 0.5 ms.
  ASSERT_FALSE(b->Recv(0).ok());
  auto r = b->Recv(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 100u);
  // Arrival = serialization (100 µs) + base latency (1 ms).
  EXPECT_EQ(clock.NowNs(), (100u + 1000u) * 1000u);

  // A deadline shorter than the latency must expire without the frame.
  ASSERT_TRUE(a->Send(big).ok());
  auto miss = b->Recv(1);  // 1 ms < 1.1 ms arrival
  ASSERT_FALSE(miss.ok());
  auto hit = b->Recv(10);
  EXPECT_TRUE(hit.ok());
}

TEST(SimTransportTest, LossPartitionAndEventLog) {
  LinkModel model;
  model.loss_rate = 1.0;
  SimClock clock;
  SimNet net(&clock, model, 7);
  auto [a, b] = net.CreatePair();
  ASSERT_TRUE(a->Send(Frame({1})).ok());  // accepted, then lost
  ASSERT_FALSE(b->Recv(5).ok());
  EXPECT_EQ(net.stats().frames_sent, 1u);
  EXPECT_EQ(net.stats().frames_lost, 1u);
  EXPECT_EQ(net.stats().frames_delivered, 0u);
  EXPECT_EQ(net.event_log().Count(SimEventKind::kLost), 1u);

  LinkModel part;
  part.partitions.push_back({0, 2000000});  // [0, 2ms) outage
  SimClock clock2;
  SimNet net2(&clock2, part, 7);
  auto [c, d] = net2.CreatePair();
  ASSERT_TRUE(c->Send(Frame({1})).ok());  // inside the window: lost
  ASSERT_FALSE(d->Recv(5).ok());          // advances past the window
  ASSERT_TRUE(c->Send(Frame({2})).ok());  // after the window: delivered
  auto r = d->Recv(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Frame({2}));
  EXPECT_EQ(net2.stats().frames_partitioned, 1u);
  EXPECT_EQ(net2.event_log().Count(SimEventKind::kPartitioned), 1u);
  EXPECT_EQ(net2.event_log().Count(SimEventKind::kDelivered), 1u);
}

TEST(SimTransportTest, SameSeedRealizesSameLossPattern) {
  LinkModel model;
  model.loss_rate = 0.4;
  auto run = [&](uint64_t seed) {
    SimClock clock;
    SimNet net(&clock, model, seed);
    auto [a, b] = net.CreatePair(4096);
    std::vector<bool> delivered;
    delivered.reserve(200);
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(a->Send(Frame({static_cast<uint8_t>(i)})).ok());
      delivered.push_back(b->Recv(1).ok());
    }
    return delivered;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(SimTransportTest, ReactiveEndpointPumpsFromDeliveryCallback) {
  // Echo server pattern: the reactive side answers from event context
  // while the driver side blocks in Recv — the exact shape SimFleet uses.
  SimClock clock;
  SimNet net(&clock, LinkModel{}, 1);
  auto [driver, reactive] = net.CreatePair();
  SimTransport* reactive_raw = reactive.get();
  reactive_raw->set_on_frame([&] {
    auto in = reactive_raw->Recv(0);
    ASSERT_TRUE(in.ok());
    Bytes echo = in.value();
    echo.push_back(0xee);
    ASSERT_TRUE(reactive_raw->Send(echo).ok());
  });
  ASSERT_TRUE(driver->Send(Frame({0x01})).ok());
  auto reply = driver->Recv(100);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), Frame({0x01, 0xee}));
}

TEST(SimFleetTest, GroupByRoundOverRealProtocolStack) {
  SimFleetConfig cfg;
  cfg.num_tokens = 50;
  cfg.tuples_per_token = 2;
  cfg.log_events = true;
  SimFleet fleet(cfg);
  ASSERT_TRUE(fleet.Build().ok());
  ASSERT_EQ(fleet.server().num_sessions(), 50u);

  auto out = fleet.RunSecureAggregation(global::AggFunc::kSum);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out->groups.size(), 0u);
  EXPECT_LE(out->groups.size(), 5u);
  EXPECT_EQ(fleet.server().last_report().responders, 50u);
  EXPECT_EQ(fleet.server().last_report().missing_tokens, 0u);
  EXPECT_EQ(fleet.pump_errors(), 0u);
  EXPECT_GT(fleet.net().stats().bytes_delivered, 0u);
  // Every group label is a workload city, never a noise label.
  for (const auto& [group, sum] : out->groups) {
    EXPECT_EQ(group.rfind("city-", 0), 0u) << group;
    EXPECT_GE(sum, 0.0);
  }
}

TEST(SimFleetTest, DropoutsDegradeToQuorum) {
  SimFleetConfig cfg;
  cfg.num_tokens = 20;
  cfg.dropout_every = 5;  // tokens 0,5,10,15 never answer rounds
  cfg.deadline_ms = 50;   // virtual milliseconds: timeouts are free
  cfg.max_retries = 1;

  {
    SimFleet strict(cfg);
    ASSERT_TRUE(strict.Build().ok());
    EXPECT_EQ(strict.dropped_tokens(), 4u);
    auto out = strict.RunSecureAggregation(global::AggFunc::kSum);
    EXPECT_FALSE(out.ok());  // quorum 1.0 cannot tolerate dropouts
    EXPECT_EQ(strict.server().last_report().responders, 16u);
  }
  {
    cfg.quorum = 0.75;
    SimFleet lenient(cfg);
    ASSERT_TRUE(lenient.Build().ok());
    auto out = lenient.RunSecureAggregation(global::AggFunc::kSum);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(lenient.server().last_report().responders, 16u);
    EXPECT_EQ(out->metrics.tokens_missing, 4u);
  }
}

TEST(SimFleetTest, ChurnedTokensReadmitAndNextRoundRunsFullStrength) {
  SimFleetConfig cfg;
  cfg.num_tokens = 12;
  SimFleet fleet(cfg);
  ASSERT_TRUE(fleet.Build().ok());
  auto first = fleet.RunSecureAggregation(global::AggFunc::kSum);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  ASSERT_TRUE(fleet.ChurnAndReadmit(3).ok());
  EXPECT_EQ(fleet.churned_tokens(), 4u);
  EXPECT_EQ(fleet.server().num_sessions(), 12u);  // readmitted, not added

  auto second = fleet.RunSecureAggregation(global::AggFunc::kSum);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(fleet.server().last_report().responders, 12u);
  // Same tuples, same fleet: the aggregate must not drift across churn.
  EXPECT_EQ(first->groups, second->groups);
}

TEST(SimFleetTest, MemoryAccountingScalesPerToken) {
  SimFleetConfig cfg;
  cfg.num_tokens = 100;
  SimFleet fleet(cfg);
  ASSERT_TRUE(fleet.Build().ok());
  auto m = fleet.Memory();
  EXPECT_GT(m.bytes_estimate, 0u);
  EXPECT_EQ(m.bytes_per_token, m.bytes_estimate / 100);
  // The per-token footprint must stay small enough that 10^6 tokens fit in
  // one process (the tier's design budget: a few KiB per token).
  EXPECT_LT(m.bytes_per_token, 16u * 1024u);
#ifdef __linux__
  EXPECT_GT(m.vm_hwm_kb, 0u);
#endif
}

}  // namespace
}  // namespace pds::sim
