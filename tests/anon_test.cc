#include <gtest/gtest.h>

#include <memory>

#include "anon/hierarchy.h"
#include "anon/kanonymity.h"
#include "anon/metap.h"
#include "workloads/census.h"

namespace pds::anon {
namespace {

TEST(HierarchyTest, NumericLevels) {
  NumericHierarchy h(/*base_width=*/5, /*levels=*/3);
  EXPECT_EQ(h.max_level(), 4u);
  EXPECT_EQ(h.Generalize("37", 0), "37");
  EXPECT_EQ(h.Generalize("37", 1), "[35-39]");
  EXPECT_EQ(h.Generalize("37", 2), "[30-39]");
  EXPECT_EQ(h.Generalize("37", 3), "[20-39]");
  EXPECT_EQ(h.Generalize("37", 4), "*");
  EXPECT_EQ(h.Generalize("37", 99), "*");  // clamped
}

TEST(HierarchyTest, NumericBucketBoundaries) {
  NumericHierarchy h(10, 2);
  EXPECT_EQ(h.Generalize("0", 1), "[0-9]");
  EXPECT_EQ(h.Generalize("9", 1), "[0-9]");
  EXPECT_EQ(h.Generalize("10", 1), "[10-19]");
  // Same bucket -> same label (the k-anonymity grouping property).
  EXPECT_EQ(h.Generalize("13", 2), h.Generalize("6", 2));
}

TEST(HierarchyTest, PrefixLevels) {
  PrefixHierarchy h(5);
  EXPECT_EQ(h.Generalize("75013", 0), "75013");
  EXPECT_EQ(h.Generalize("75013", 1), "7501*");
  EXPECT_EQ(h.Generalize("75013", 3), "75***");
  EXPECT_EQ(h.Generalize("75013", 5), "*****");
}

TEST(HierarchyTest, SuppressionLevels) {
  SuppressionHierarchy h;
  EXPECT_EQ(h.max_level(), 1u);
  EXPECT_EQ(h.Generalize("engineer", 0), "engineer");
  EXPECT_EQ(h.Generalize("engineer", 1), "*");
}

KAnonymizer MakeAnonymizer(uint32_t k, double suppression = 0.05) {
  KAnonymizer::Options opts;
  opts.k = k;
  opts.max_suppression_rate = suppression;
  return KAnonymizer(workloads::CensusHierarchies(), opts);
}

TEST(KAnonymizerTest, StrategiesEnumeration) {
  KAnonymizer anon = MakeAnonymizer(2);
  auto zero = anon.StrategiesWithTotal(0);
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_EQ(zero[0], (LevelVector{0, 0}));
  auto one = anon.StrategiesWithTotal(1);
  EXPECT_EQ(one.size(), 2u);  // (0,1) and (1,0)
  // Total beyond the lattice top yields nothing.
  auto beyond = anon.StrategiesWithTotal(100);
  EXPECT_TRUE(beyond.empty());
}

TEST(KAnonymizerTest, ResultIsKAnonymous) {
  workloads::CensusConfig cfg;
  cfg.num_records = 500;
  auto records = workloads::GenerateCensus(cfg);
  for (uint32_t k : {2u, 5u, 10u}) {
    KAnonymizer anon = MakeAnonymizer(k);
    auto result = anon.Anonymize(records);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(CheckKAnonymity(result->published, k)) << "k=" << k;
    EXPECT_GT(result->published.size(), records.size() / 2);
  }
}

TEST(KAnonymizerTest, LossGrowsWithK) {
  workloads::CensusConfig cfg;
  cfg.num_records = 400;
  auto records = workloads::GenerateCensus(cfg);
  auto r2 = MakeAnonymizer(2).Anonymize(records);
  auto r25 = MakeAnonymizer(25).Anonymize(records);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r25.ok());
  EXPECT_LE(r2->information_loss, r25->information_loss);
}

TEST(KAnonymizerTest, SuppressionBudgetRespected) {
  workloads::CensusConfig cfg;
  cfg.num_records = 300;
  auto records = workloads::GenerateCensus(cfg);
  KAnonymizer anon = MakeAnonymizer(5, /*suppression=*/0.02);
  auto result = anon.Anonymize(records);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->suppressed,
            static_cast<uint64_t>(0.02 * records.size()));
  EXPECT_EQ(result->published.size() + result->suppressed, records.size());
}

TEST(KAnonymizerTest, EmptyInput) {
  KAnonymizer anon = MakeAnonymizer(5);
  auto result = anon.Anonymize({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->published.empty());
}

TEST(KAnonymizerTest, ArityMismatchRejected) {
  KAnonymizer anon = MakeAnonymizer(2);
  Record bad;
  bad.quasi_identifiers = {"37"};  // needs 2
  EXPECT_FALSE(anon.Anonymize({bad}).ok());
}

TEST(KAnonymizerTest, ExtremeKGeneralizesToTop) {
  // k greater than the dataset forces heavy generalization/suppression,
  // but must still terminate with a valid (possibly all-*) table.
  workloads::CensusConfig cfg;
  cfg.num_records = 50;
  auto records = workloads::GenerateCensus(cfg);
  KAnonymizer anon = MakeAnonymizer(50, /*suppression=*/0.0);
  auto result = anon.Anonymize(records);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(CheckKAnonymity(result->published, 50));
}

TEST(DiversityTest, CheckLDiversity) {
  Record a1{{"x"}, "flu"}, a2{{"x"}, "hiv"}, a3{{"x"}, "flu"};
  Record b1{{"y"}, "flu"}, b2{{"y"}, "flu"};
  EXPECT_TRUE(CheckLDiversity({a1, a2, a3}, 2));
  EXPECT_FALSE(CheckLDiversity({b1, b2}, 2));        // same sensitive value
  EXPECT_FALSE(CheckLDiversity({a1, a2, b1, b2}, 2));  // class y fails
}

class MetapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crypto::SymmetricKey key = crypto::KeyFromString("metap-fleet");
    workloads::CensusConfig cfg;
    cfg.num_records = 300;
    auto records = workloads::GenerateCensus(cfg);
    size_t num_nodes = 30;
    for (size_t i = 0; i < num_nodes; ++i) {
      mcu::SecureToken::Config tc;
      tc.token_id = i;
      tc.fleet_key = key;
      tokens_.push_back(std::make_unique<mcu::SecureToken>(tc));
      MetapParticipant p;
      p.token = tokens_.back().get();
      participants_.push_back(std::move(p));
    }
    for (size_t i = 0; i < records.size(); ++i) {
      participants_[i % num_nodes].records.push_back(records[i]);
    }
  }

  std::vector<std::unique_ptr<mcu::SecureToken>> tokens_;
  std::vector<MetapParticipant> participants_;
};

TEST_F(MetapTest, DistributedMatchesCentralized) {
  KAnonymizer::Options opts;
  opts.k = 5;
  opts.max_suppression_rate = 0.05;

  MetapProtocol protocol(workloads::CensusHierarchies(), opts);
  auto output = protocol.Publish(participants_);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  // Same strategy and same published size as the centralized run.
  std::vector<Record> all;
  for (auto& p : participants_) {
    all.insert(all.end(), p.records.begin(), p.records.end());
  }
  KAnonymizer central(workloads::CensusHierarchies(), opts);
  auto central_result = central.Anonymize(all);
  ASSERT_TRUE(central_result.ok());
  EXPECT_EQ(output->result.levels, central_result->levels);
  EXPECT_EQ(output->result.published.size(),
            central_result->published.size());
  EXPECT_EQ(output->result.suppressed, central_result->suppressed);
  EXPECT_TRUE(CheckKAnonymity(output->result.published, opts.k));
}

TEST_F(MetapTest, SsiNeverSeesPlaintext) {
  KAnonymizer::Options opts;
  opts.k = 5;
  MetapProtocol protocol(workloads::CensusHierarchies(), opts);
  auto output = protocol.Publish(participants_);
  ASSERT_TRUE(output.ok());
  EXPECT_FALSE(output->leakage.plaintext_groups_visible);
  EXPECT_GT(output->leakage.tuples_observed, 0u);
  EXPECT_GT(output->metrics.token_crypto_ops, 0u);
  EXPECT_GE(output->strategies_tried, 1u);
}

TEST_F(MetapTest, HigherKTriesMoreStrategies) {
  KAnonymizer::Options lo;
  lo.k = 2;
  KAnonymizer::Options hi;
  hi.k = 25;
  MetapProtocol p_lo(workloads::CensusHierarchies(), lo);
  MetapProtocol p_hi(workloads::CensusHierarchies(), hi);
  auto out_lo = p_lo.Publish(participants_);
  auto out_hi = p_hi.Publish(participants_);
  ASSERT_TRUE(out_lo.ok());
  ASSERT_TRUE(out_hi.ok());
  EXPECT_LE(out_lo->strategies_tried, out_hi->strategies_tried);
  EXPECT_LE(out_lo->result.information_loss,
            out_hi->result.information_loss);
}

TEST_F(MetapTest, EmptyFleetRejected) {
  KAnonymizer::Options opts;
  MetapProtocol protocol(workloads::CensusHierarchies(), opts);
  std::vector<MetapParticipant> none;
  EXPECT_FALSE(protocol.Publish(none).ok());
}

}  // namespace
}  // namespace pds::anon
