#include <gtest/gtest.h>

#include "mcu/ram_gauge.h"
#include "mcu/secure_token.h"

namespace pds::mcu {
namespace {

TEST(RamGaugeTest, AcquireRelease) {
  RamGauge g(1000);
  EXPECT_TRUE(g.Acquire(400).ok());
  EXPECT_EQ(g.in_use(), 400u);
  EXPECT_EQ(g.available(), 600u);
  g.Release(150);
  EXPECT_EQ(g.in_use(), 250u);
}

TEST(RamGaugeTest, RejectsOverBudget) {
  RamGauge g(100);
  EXPECT_TRUE(g.Acquire(100).ok());
  Status s = g.Acquire(1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Failed acquire must not change accounting.
  EXPECT_EQ(g.in_use(), 100u);
}

TEST(RamGaugeTest, HighWaterMark) {
  RamGauge g(1000);
  ASSERT_TRUE(g.Acquire(700).ok());
  g.Release(600);
  ASSERT_TRUE(g.Acquire(200).ok());
  EXPECT_EQ(g.high_water(), 700u);
  g.ResetHighWater();
  EXPECT_EQ(g.high_water(), 300u);
}

TEST(RamGaugeTest, OverReleaseClamps) {
  RamGauge g(100);
  ASSERT_TRUE(g.Acquire(50).ok());
  g.Release(80);
  EXPECT_EQ(g.in_use(), 0u);
}

TEST(RamGaugeTest, ExactBudgetAcquireSucceeds) {
  RamGauge g(128 * 1024);  // the tutorial's "<128 KB" budget, to the byte
  ASSERT_TRUE(g.Acquire(128 * 1024).ok());
  EXPECT_EQ(g.available(), 0u);
  EXPECT_EQ(g.high_water(), 128u * 1024u);
  // Even one more byte must fail, without corrupting the accounting.
  EXPECT_EQ(g.Acquire(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(g.in_use(), 128u * 1024u);
  g.Release(128 * 1024);
  EXPECT_EQ(g.in_use(), 0u);
  EXPECT_EQ(g.available(), 128u * 1024u);
}

TEST(RamGaugeTest, ZeroByteAcquireIsFreeAtFullBudget) {
  RamGauge g(64);
  ASSERT_TRUE(g.Acquire(64).ok());
  // A zero-sized reservation (e.g. an empty RamCharge) always fits.
  EXPECT_TRUE(g.Acquire(0).ok());
  EXPECT_EQ(g.in_use(), 64u);
}

TEST(RamGaugeTest, DoubleReleaseClampsAndKeepsGaugeUsable) {
  RamGauge g(100);
  ASSERT_TRUE(g.Acquire(60).ok());
  g.Release(60);
  g.Release(60);  // double release: clamps to zero, does not wrap
  EXPECT_EQ(g.in_use(), 0u);
  EXPECT_EQ(g.available(), 100u);
  // Accounting still works after the programming error.
  ASSERT_TRUE(g.Acquire(100).ok());
  EXPECT_EQ(g.Acquire(1).code(), StatusCode::kResourceExhausted);
}

TEST(RamGaugeTest, HighWaterResetTracksCurrentUseNotZero) {
  RamGauge g(1000);
  ASSERT_TRUE(g.Acquire(900).ok());
  g.Release(850);
  g.ResetHighWater();
  EXPECT_EQ(g.high_water(), 50u);  // resets to in_use, not to zero
  ASSERT_TRUE(g.Acquire(10).ok());
  EXPECT_EQ(g.high_water(), 60u);
  g.Release(60);
  g.ResetHighWater();
  EXPECT_EQ(g.high_water(), 0u);
}

TEST(RamChargeTest, GrowPastBudgetFailsWithoutLeakingCharge) {
  RamGauge g(100);
  auto charge = RamCharge::Make(&g, 90);
  ASSERT_TRUE(charge.ok());
  Status s = charge.value().Grow(20);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // The failed grow must leave the original charge intact...
  EXPECT_EQ(charge.value().bytes(), 90u);
  EXPECT_EQ(g.in_use(), 90u);
  // ...and the destructor must release exactly what was acquired.
  { auto dropped = std::move(charge).value(); }
  EXPECT_EQ(g.in_use(), 0u);
}

TEST(RamChargeTest, RaiiReleases) {
  RamGauge g(1000);
  {
    auto charge = RamCharge::Make(&g, 300);
    ASSERT_TRUE(charge.ok());
    EXPECT_EQ(g.in_use(), 300u);
  }
  EXPECT_EQ(g.in_use(), 0u);
}

TEST(RamChargeTest, MoveTransfersOwnership) {
  RamGauge g(1000);
  auto charge = RamCharge::Make(&g, 300);
  ASSERT_TRUE(charge.ok());
  {
    RamCharge moved = std::move(charge).value();
    EXPECT_EQ(g.in_use(), 300u);
  }
  EXPECT_EQ(g.in_use(), 0u);
}

TEST(RamChargeTest, GrowCharges) {
  RamGauge g(500);
  auto charge = RamCharge::Make(&g, 100);
  ASSERT_TRUE(charge.ok());
  EXPECT_TRUE(charge->Grow(200).ok());
  EXPECT_EQ(g.in_use(), 300u);
  EXPECT_EQ(charge->bytes(), 300u);
  EXPECT_EQ(charge->Grow(300).code(), StatusCode::kResourceExhausted);
}

TEST(RamChargeTest, FailedMakeChargesNothing) {
  RamGauge g(100);
  auto charge = RamCharge::Make(&g, 200);
  EXPECT_FALSE(charge.ok());
  EXPECT_EQ(g.in_use(), 0u);
}

SecureToken::Config TokenConfig(uint64_t id) {
  SecureToken::Config cfg;
  cfg.token_id = id;
  cfg.fleet_key = crypto::KeyFromString("shared-fleet-secret");
  cfg.rng_seed = 7;
  return cfg;
}

TEST(SecureTokenTest, DetEncryptionInteroperatesAcrossFleet) {
  SecureToken alice(TokenConfig(1));
  SecureToken bob(TokenConfig(2));

  auto ct = alice.EncryptDet(ByteView(std::string_view("diagnosis=flu")));
  ASSERT_TRUE(ct.ok());
  auto pt = bob.DecryptDet(ByteView(*ct));
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(ByteView(*pt).ToString(), "diagnosis=flu");

  // Deterministic across tokens with the same fleet key.
  auto ct2 = bob.EncryptDet(ByteView(std::string_view("diagnosis=flu")));
  ASSERT_TRUE(ct2.ok());
  EXPECT_EQ(*ct, *ct2);
}

TEST(SecureTokenTest, NonDetEncryptionDiffersPerCall) {
  SecureToken token(TokenConfig(1));
  auto c1 = token.EncryptNonDet(ByteView(std::string_view("v")));
  auto c2 = token.EncryptNonDet(ByteView(std::string_view("v")));
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);
  auto pt = token.DecryptNonDet(ByteView(*c1));
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(ByteView(*pt).ToString(), "v");
}

TEST(SecureTokenTest, AttestationVerifiesAcrossFleet) {
  SecureToken alice(TokenConfig(1));
  SecureToken bob(TokenConfig(2));
  auto proof = alice.Attest(ByteView(std::string_view("challenge-123")));
  ASSERT_TRUE(proof.ok());
  auto verdict =
      bob.VerifyAttestation(ByteView(std::string_view("challenge-123")),
                            *proof);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);

  auto wrong =
      bob.VerifyAttestation(ByteView(std::string_view("challenge-124")),
                            *proof);
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(*wrong);
}

TEST(SecureTokenTest, ForeignFleetFailsAttestation) {
  SecureToken alice(TokenConfig(1));
  SecureToken::Config foreign_cfg = TokenConfig(3);
  foreign_cfg.fleet_key = crypto::KeyFromString("other-fleet");
  SecureToken mallory(foreign_cfg);

  auto proof = mallory.Attest(ByteView(std::string_view("challenge")));
  ASSERT_TRUE(proof.ok());
  auto verdict =
      alice.VerifyAttestation(ByteView(std::string_view("challenge")), *proof);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(*verdict);
}

TEST(SecureTokenTest, TamperZeroizes) {
  SecureToken token(TokenConfig(1));
  auto ct = token.EncryptDet(ByteView(std::string_view("secret")));
  ASSERT_TRUE(ct.ok());

  token.Tamper();
  EXPECT_TRUE(token.tampered());
  EXPECT_EQ(token.EncryptDet(ByteView(std::string_view("x"))).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(token.DecryptDet(ByteView(*ct)).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(token.Mac(ByteView(std::string_view("m"))).status().code(),
            StatusCode::kPermissionDenied);
}

TEST(SecureTokenTest, CryptoOpsCounted) {
  SecureToken token(TokenConfig(1));
  ASSERT_TRUE(token.EncryptDet(ByteView(std::string_view("a"))).ok());
  ASSERT_TRUE(token.EncryptNonDet(ByteView(std::string_view("b"))).ok());
  ASSERT_TRUE(token.Mac(ByteView(std::string_view("c"))).ok());
  EXPECT_EQ(token.crypto_ops().encryptions, 2u);
  EXPECT_EQ(token.crypto_ops().macs, 1u);
  EXPECT_EQ(token.crypto_ops().total(), 3u);
  token.ResetCryptoOps();
  EXPECT_EQ(token.crypto_ops().total(), 0u);
}

TEST(SecureTokenTest, RamBudgetConfigured) {
  SecureToken::Config cfg = TokenConfig(1);
  cfg.ram_budget_bytes = 4096;
  SecureToken token(cfg);
  EXPECT_EQ(token.ram().budget(), 4096u);
  EXPECT_TRUE(token.ram().Acquire(4096).ok());
  EXPECT_FALSE(token.ram().Acquire(1).ok());
}

}  // namespace
}  // namespace pds::mcu
