#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "flash/flash.h"
#include "logstore/external_sort.h"
#include "mcu/ram_gauge.h"

namespace pds::logstore {
namespace {

flash::Geometry TestGeometry() {
  flash::Geometry g;
  g.page_size = 256;
  g.pages_per_block = 8;
  g.block_count = 512;
  return g;
}

// Fixed 16-byte record: 8-byte big-endian key + 8-byte big-endian payload,
// so memcmp order == numeric key order.
Bytes MakeRecord(uint64_t key, uint64_t payload) {
  Bytes r(16);
  for (int i = 0; i < 8; ++i) {
    r[i] = static_cast<uint8_t>(key >> (56 - 8 * i));
    r[8 + i] = static_cast<uint8_t>(payload >> (56 - 8 * i));
  }
  return r;
}

uint64_t RecordKey(ByteView r) {
  uint64_t k = 0;
  for (int i = 0; i < 8; ++i) {
    k = (k << 8) | r[i];
  }
  return k;
}

class ExternalSortTest : public ::testing::Test {
 protected:
  ExternalSortTest() : chip_(TestGeometry()), alloc_(&chip_), gauge_(8192) {}

  std::vector<uint64_t> SortKeys(const std::vector<uint64_t>& keys,
                                 size_t ram_budget) {
    ExternalSorter::Options opts;
    opts.record_size = 16;
    opts.ram_budget_bytes = ram_budget;
    mcu::RamGauge gauge(ram_budget + 4096);  // headroom for merge pages
    ExternalSorter sorter(&alloc_, opts, &gauge);
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_TRUE(sorter.Add(ByteView(MakeRecord(keys[i], i))).ok());
    }
    std::vector<uint64_t> out;
    Status s = sorter.Finish([&](ByteView rec) {
      out.push_back(RecordKey(rec));
      return Status::Ok();
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  flash::FlashChip chip_;
  flash::PartitionAllocator alloc_;
  mcu::RamGauge gauge_;
};

TEST_F(ExternalSortTest, InRamSort) {
  std::vector<uint64_t> keys = {5, 3, 9, 1, 7};
  auto sorted = SortKeys(keys, 4096);
  std::vector<uint64_t> expected = {1, 3, 5, 7, 9};
  EXPECT_EQ(sorted, expected);
}

TEST_F(ExternalSortTest, EmptyInput) {
  auto sorted = SortKeys({}, 4096);
  EXPECT_TRUE(sorted.empty());
}

TEST_F(ExternalSortTest, SingleRecord) {
  auto sorted = SortKeys({42}, 4096);
  EXPECT_EQ(sorted, std::vector<uint64_t>{42});
}

TEST_F(ExternalSortTest, SpillsAndMerges) {
  // 1000 records of 16 bytes = 16 KB with a 1 KB budget -> many runs.
  Rng rng(1);
  std::vector<uint64_t> keys(1000);
  for (auto& k : keys) {
    k = rng.Next();
  }
  auto sorted = SortKeys(keys, 1024);
  ASSERT_EQ(sorted.size(), keys.size());
  std::vector<uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

TEST_F(ExternalSortTest, DuplicateKeysPreserved) {
  std::vector<uint64_t> keys(100, 7);
  keys.resize(150, 7);
  for (int i = 0; i < 50; ++i) {
    keys.push_back(3);
  }
  auto sorted = SortKeys(keys, 512);
  ASSERT_EQ(sorted.size(), 200u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sorted[i], 3u);
  }
  for (size_t i = 50; i < 200; ++i) {
    EXPECT_EQ(sorted[i], 7u);
  }
}

TEST_F(ExternalSortTest, AlreadySortedInput) {
  std::vector<uint64_t> keys(500);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i;
  }
  auto sorted = SortKeys(keys, 1024);
  EXPECT_EQ(sorted, keys);
}

TEST_F(ExternalSortTest, ReverseSortedInput) {
  std::vector<uint64_t> keys(500);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = 500 - i;
  }
  auto sorted = SortKeys(keys, 1024);
  std::vector<uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

TEST_F(ExternalSortTest, MultiPassMergeTinyBudget) {
  // Budget of 512 bytes with 256-byte pages -> fan-in 2 at best, forcing
  // multiple merge passes for 64 runs.
  Rng rng(2);
  std::vector<uint64_t> keys(2048);
  for (auto& k : keys) {
    k = rng.Next() % 1000;
  }
  auto sorted = SortKeys(keys, 512);
  ASSERT_EQ(sorted.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST_F(ExternalSortTest, RejectsWrongRecordSize) {
  ExternalSorter::Options opts;
  opts.record_size = 16;
  ExternalSorter sorter(&alloc_, opts, &gauge_);
  Bytes wrong(8, 0);
  EXPECT_EQ(sorter.Add(ByteView(wrong)).code(), StatusCode::kInvalidArgument);
}

TEST_F(ExternalSortTest, FinishTwiceFails) {
  ExternalSorter::Options opts;
  opts.record_size = 16;
  ExternalSorter sorter(&alloc_, opts, &gauge_);
  ASSERT_TRUE(sorter.Add(ByteView(MakeRecord(1, 1))).ok());
  auto noop = [](ByteView) { return Status::Ok(); };
  ASSERT_TRUE(sorter.Finish(noop).ok());
  EXPECT_EQ(sorter.Finish(noop).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExternalSortTest, RamGaugeReturnsToZero) {
  {
    ExternalSorter::Options opts;
    opts.record_size = 16;
    opts.ram_budget_bytes = 1024;
    ExternalSorter sorter(&alloc_, opts, &gauge_);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(sorter.Add(ByteView(MakeRecord(rng.Next(), i))).ok());
    }
    ASSERT_TRUE(sorter.Finish([](ByteView) { return Status::Ok(); }).ok());
  }
  EXPECT_EQ(gauge_.in_use(), 0u);
}

TEST_F(ExternalSortTest, EmitErrorPropagates) {
  ExternalSorter::Options opts;
  opts.record_size = 16;
  ExternalSorter sorter(&alloc_, opts, &gauge_);
  ASSERT_TRUE(sorter.Add(ByteView(MakeRecord(1, 1))).ok());
  Status s = sorter.Finish(
      [](ByteView) { return Status::Internal("consumer failed"); });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace pds::logstore
