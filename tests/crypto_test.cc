#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/cipher.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace pds::crypto {
namespace {

std::string DigestHex(const Sha256::Digest& d) {
  return ToHex(ByteView(d.data(), d.size()));
}

// FIPS 180-4 test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256::Hash(ByteView(std::string_view("")))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestHex(Sha256::Hash(ByteView(std::string_view("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestHex(Sha256::Hash(ByteView(std::string_view(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg(1000, 'x');
  Sha256 h;
  h.Update(ByteView(std::string_view(msg).substr(0, 13)));
  h.Update(ByteView(std::string_view(msg).substr(13, 700)));
  h.Update(ByteView(std::string_view(msg).substr(713)));
  EXPECT_EQ(DigestHex(h.Finish()),
            DigestHex(Sha256::Hash(ByteView(std::string_view(msg)))));
}

TEST(Sha256Test, MillionA) {
  std::string chunk(1000, 'a');
  Sha256 h;
  for (int i = 0; i < 1000; ++i) {
    h.Update(ByteView(std::string_view(chunk)));
  }
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// RFC 4231 test case 2.
TEST(HmacTest, Rfc4231Case2) {
  Sha256::Digest mac = HmacSha256(ByteView(std::string_view("Jefe")),
                                  ByteView(std::string_view(
                                      "what do ya want for nothing?")));
  EXPECT_EQ(DigestHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Sha256::Digest mac =
      HmacSha256(ByteView(key), ByteView(std::string_view("Hi There")));
  EXPECT_EQ(DigestHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, LongKeyIsHashed) {
  Bytes key(131, 0xaa);  // longer than the 64-byte block
  Sha256::Digest mac = HmacSha256(
      ByteView(key),
      ByteView(std::string_view("Test Using Larger Than Block-Size Key - "
                                "Hash Key First")));
  // RFC 4231 test case 6.
  EXPECT_EQ(DigestHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DeriveKeyVariesWithLabel) {
  Bytes master(32, 0x42);
  auto k1 = DeriveKey(ByteView(master), ByteView(std::string_view("a")));
  auto k2 = DeriveKey(ByteView(master), ByteView(std::string_view("b")));
  EXPECT_FALSE(DigestEqual(k1, k2));
}

TEST(HmacTest, DigestEqualConstantTimeSemantics) {
  Sha256::Digest a{}, b{};
  EXPECT_TRUE(DigestEqual(a, b));
  b[31] = 1;
  EXPECT_FALSE(DigestEqual(a, b));
}

// FIPS 197 Appendix C.1 AES-128 known-answer test.
TEST(AesTest, Fips197Vector) {
  Aes128::Key key;
  Bytes key_bytes = FromHex("000102030405060708090a0b0c0d0e0f");
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  Aes128 aes(key);

  Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  Aes128::Block block;
  std::copy(pt.begin(), pt.end(), block.begin());
  aes.EncryptBlock(block.data());
  EXPECT_EQ(ToHex(ByteView(block.data(), block.size())),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, CtrRoundTrip) {
  Aes128::Key key{};
  key[0] = 1;
  Aes128 aes(key);
  Aes128::Block nonce{};
  nonce[15] = 7;

  std::string msg = "counter mode works on arbitrary-length messages";
  Bytes data(msg.begin(), msg.end());
  Bytes original = data;
  AesCtrXor(aes, nonce, data.data(), data.size());
  EXPECT_NE(data, original);
  AesCtrXor(aes, nonce, data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(AesTest, CtrCounterAdvances) {
  // Two consecutive blocks must use different keystream.
  Aes128::Key key{};
  Aes128 aes(key);
  Aes128::Block nonce{};
  Bytes zeros(32, 0);
  AesCtrXor(aes, nonce, zeros.data(), zeros.size());
  ByteView block1(zeros.data(), 16), block2(zeros.data() + 16, 16);
  EXPECT_FALSE(block1 == block2);
}

TEST(CipherTest, KeyFromStringDeterministic) {
  EXPECT_EQ(KeyFromString("secret"), KeyFromString("secret"));
  EXPECT_NE(KeyFromString("secret"), KeyFromString("other"));
}

TEST(DetCipherTest, RoundTrip) {
  DetCipher c(KeyFromString("fleet"));
  std::string msg = "age=34";
  Bytes ct = c.Encrypt(ByteView(std::string_view(msg)));
  auto pt = c.Decrypt(ByteView(ct));
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(ByteView(*pt).ToString(), msg);
}

TEST(DetCipherTest, DeterministicProperty) {
  // The core property the [TNP14] noise/histogram protocols rely on.
  DetCipher c(KeyFromString("fleet"));
  Bytes ct1 = c.Encrypt(ByteView(std::string_view("same plaintext")));
  Bytes ct2 = c.Encrypt(ByteView(std::string_view("same plaintext")));
  EXPECT_EQ(ct1, ct2);
  Bytes ct3 = c.Encrypt(ByteView(std::string_view("diff plaintext")));
  EXPECT_NE(ct1, ct3);
}

TEST(DetCipherTest, DetectsTampering) {
  DetCipher c(KeyFromString("fleet"));
  Bytes ct = c.Encrypt(ByteView(std::string_view("payload")));
  ct[ct.size() - 1] ^= 1;
  EXPECT_EQ(c.Decrypt(ByteView(ct)).status().code(),
            StatusCode::kIntegrityViolation);
}

TEST(DetCipherTest, RejectsShortCiphertext) {
  DetCipher c(KeyFromString("fleet"));
  Bytes tiny(7, 0);
  EXPECT_FALSE(c.Decrypt(ByteView(tiny)).ok());
}

TEST(DetCipherTest, KeysMatter) {
  DetCipher c1(KeyFromString("k1"));
  DetCipher c2(KeyFromString("k2"));
  Bytes ct = c1.Encrypt(ByteView(std::string_view("payload")));
  EXPECT_FALSE(c2.Decrypt(ByteView(ct)).ok());
}

TEST(NonDetCipherTest, RoundTrip) {
  NonDetCipher c(KeyFromString("fleet"));
  Rng rng(99);
  std::string msg = "salary=52000";
  Bytes ct = c.Encrypt(ByteView(std::string_view(msg)), &rng);
  auto pt = c.Decrypt(ByteView(ct));
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(ByteView(*pt).ToString(), msg);
}

TEST(NonDetCipherTest, NonDeterministicProperty) {
  // The core property the secure-aggregation protocol relies on: the SSI
  // cannot even detect equal plaintexts.
  NonDetCipher c(KeyFromString("fleet"));
  Rng rng(99);
  Bytes ct1 = c.Encrypt(ByteView(std::string_view("same")), &rng);
  Bytes ct2 = c.Encrypt(ByteView(std::string_view("same")), &rng);
  EXPECT_NE(ct1, ct2);
}

TEST(NonDetCipherTest, DetectsTampering) {
  NonDetCipher c(KeyFromString("fleet"));
  Rng rng(99);
  Bytes ct = c.Encrypt(ByteView(std::string_view("payload")), &rng);
  ct[20] ^= 1;
  EXPECT_EQ(c.Decrypt(ByteView(ct)).status().code(),
            StatusCode::kIntegrityViolation);
}

TEST(NonDetCipherTest, EmptyPlaintext) {
  NonDetCipher c(KeyFromString("fleet"));
  Rng rng(1);
  Bytes ct = c.Encrypt(ByteView(), &rng);
  EXPECT_EQ(ct.size(), NonDetCipher::kOverhead);
  auto pt = c.Decrypt(ByteView(ct));
  ASSERT_TRUE(pt.ok());
  EXPECT_TRUE(pt->empty());
}

}  // namespace
}  // namespace pds::crypto
