// ThreadPool/FleetExecutor semantics plus the determinism contract: every
// global protocol and toolkit primitive must produce byte-identical output
// (groups, Metrics, LeakageReport) under a multi-threaded executor and
// under serial execution.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "global/agg_protocols.h"
#include "global/fleet_executor.h"
#include "global/toolkit.h"

namespace pds::global {
namespace {

TEST(ThreadPoolTest, ZeroAndOneThreadRunInline) {
  for (size_t threads : {0u, 1u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), 0u);
    std::thread::id runner;
    pool.Submit([&] { runner = std::this_thread::get_id(); });
    EXPECT_EQ(runner, std::this_thread::get_id());
    pool.Wait();
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, WaitEstablishesHappensBefore) {
  ThreadPool pool(4);
  std::vector<uint64_t> out(1000, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    pool.Submit([&out, i] { out[i] = i * i; });
  }
  pool.Wait();
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(FleetExecutorTest, ReturnsLowestIndexError) {
  FleetExecutor exec(4);
  Status status = exec.ParallelFor(100, [&](size_t i) -> Status {
    if (i == 13 || i == 71) {
      return Status::Internal("unit " + std::to_string(i));
    }
    return Status::Ok();
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("unit 13"), std::string::npos)
      << status.ToString();
}

TEST(FleetExecutorTest, NullExecutorRunsSerially) {
  std::vector<size_t> order;
  ASSERT_TRUE(FleetExecutor::Run(nullptr, 5, [&](size_t i) -> Status {
                order.push_back(i);
                return Status::Ok();
              }).ok());
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

// --- Protocol determinism: serial vs 8 threads, byte-identical ---

/// A reproducible fleet: tokens plus tuples, rebuilt identically for every
/// run so serial and parallel executions start from the same RNG states.
struct Fixture {
  std::vector<std::unique_ptr<mcu::SecureToken>> tokens;
  std::vector<Participant> participants;
};

Fixture MakeFleet(size_t num_tokens) {
  Fixture f;
  crypto::SymmetricKey fleet_key = crypto::KeyFromString("det-test");
  for (uint64_t i = 0; i < num_tokens; ++i) {
    mcu::SecureToken::Config cfg;
    cfg.token_id = i;
    cfg.fleet_key = fleet_key;
    cfg.rng_seed = 400 + i;
    f.tokens.push_back(std::make_unique<mcu::SecureToken>(cfg));
  }
  Rng rng(91);
  for (uint64_t i = 0; i < num_tokens; ++i) {
    Participant p;
    p.token = f.tokens[i].get();
    int tuples = 3 + static_cast<int>(rng.Uniform(8));
    for (int t = 0; t < tuples; ++t) {
      p.tuples.push_back({"city-" + std::to_string(rng.Uniform(5)),
                          static_cast<double>(rng.Uniform(1000))});
    }
    f.participants.push_back(std::move(p));
  }
  return f;
}

void ExpectIdentical(const AggOutput& serial, const AggOutput& parallel) {
  EXPECT_EQ(serial.groups, parallel.groups);
  EXPECT_EQ(serial.metrics.messages, parallel.metrics.messages);
  EXPECT_EQ(serial.metrics.bytes, parallel.metrics.bytes);
  EXPECT_EQ(serial.metrics.rounds, parallel.metrics.rounds);
  EXPECT_EQ(serial.metrics.token_crypto_ops,
            parallel.metrics.token_crypto_ops);
  EXPECT_EQ(serial.metrics.ssi_ops, parallel.metrics.ssi_ops);
  EXPECT_EQ(serial.leakage.tuples_observed, parallel.leakage.tuples_observed);
  EXPECT_EQ(serial.leakage.distinct_classes,
            parallel.leakage.distinct_classes);
  EXPECT_EQ(serial.leakage.class_sizes, parallel.leakage.class_sizes);
  EXPECT_EQ(serial.leakage.plaintext_groups_visible,
            parallel.leakage.plaintext_groups_visible);
}

/// Runs `make_protocol(executor)` on a fresh fleet serially and with an
/// 8-thread executor, and requires identical outputs.
template <typename MakeProtocol>
void CheckProtocolDeterminism(const MakeProtocol& make_protocol,
                              AggFunc func) {
  Fixture serial_fleet = MakeFleet(12);
  auto serial_protocol = make_protocol(nullptr);
  auto serial_out = serial_protocol->Execute(serial_fleet.participants, func);
  ASSERT_TRUE(serial_out.ok()) << serial_out.status().ToString();

  FleetExecutor exec(8);
  Fixture parallel_fleet = MakeFleet(12);
  auto parallel_protocol = make_protocol(&exec);
  auto parallel_out =
      parallel_protocol->Execute(parallel_fleet.participants, func);
  ASSERT_TRUE(parallel_out.ok()) << parallel_out.status().ToString();

  ExpectIdentical(*serial_out, *parallel_out);
}

TEST(ExecutorDeterminismTest, SecureAgg) {
  for (AggFunc func : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg}) {
    CheckProtocolDeterminism(
        [](FleetExecutor* exec) {
          SecureAggProtocol::Config cfg;
          cfg.partition_capacity = 16;
          cfg.executor = exec;
          return std::make_unique<SecureAggProtocol>(cfg);
        },
        func);
  }
}

TEST(ExecutorDeterminismTest, WhiteNoise) {
  CheckProtocolDeterminism(
      [](FleetExecutor* exec) {
        WhiteNoiseProtocol::Config cfg;
        cfg.noise_ratio = 0.4;
        cfg.noise_seed = 17;
        cfg.executor = exec;
        return std::make_unique<WhiteNoiseProtocol>(cfg);
      },
      AggFunc::kSum);
}

TEST(ExecutorDeterminismTest, DomainNoise) {
  CheckProtocolDeterminism(
      [](FleetExecutor* exec) {
        DomainNoiseProtocol::Config cfg;
        for (int i = 0; i < 5; ++i) {
          cfg.domain.push_back("city-" + std::to_string(i));
        }
        cfg.fakes_per_value = 2;
        cfg.executor = exec;
        return std::make_unique<DomainNoiseProtocol>(std::move(cfg));
      },
      AggFunc::kAvg);
}

TEST(ExecutorDeterminismTest, Histogram) {
  CheckProtocolDeterminism(
      [](FleetExecutor* exec) {
        HistogramProtocol::Config cfg;
        cfg.num_buckets = 4;
        cfg.executor = exec;
        return std::make_unique<HistogramProtocol>(cfg);
      },
      AggFunc::kSum);
}

// --- Toolkit primitives under the executor ---

void ExpectMetricsEq(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.token_crypto_ops, b.token_crypto_ops);
  EXPECT_EQ(a.ssi_ops, b.ssi_ops);
}

TEST(ExecutorDeterminismTest, SecureSetUnionAndIntersection) {
  const std::vector<std::vector<std::string>> sets = {
      {"a", "b", "c"}, {"b", "c", "d"}, {"c", "e"}};
  FleetExecutor exec(8);

  Rng rng1(31);
  Metrics m1;
  auto serial = SecureSetUnion(sets, 128, &rng1, &m1, nullptr);
  Rng rng2(31);
  Metrics m2;
  auto parallel = SecureSetUnion(sets, 128, &rng2, &m2, &exec);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*serial, *parallel);
  EXPECT_EQ(*serial, (std::set<std::string>{"a", "b", "c", "d", "e"}));
  ExpectMetricsEq(m1, m2);

  Rng rng3(32);
  auto isize_serial = SecureIntersectionSize(sets, 128, &rng3, nullptr,
                                             nullptr);
  Rng rng4(32);
  auto isize_parallel = SecureIntersectionSize(sets, 128, &rng4, nullptr,
                                               &exec);
  ASSERT_TRUE(isize_serial.ok());
  ASSERT_TRUE(isize_parallel.ok());
  EXPECT_EQ(*isize_serial, 1u);  // only "c" is everywhere
  EXPECT_EQ(*isize_serial, *isize_parallel);
}

TEST(ExecutorDeterminismTest, ScalarProductAndFleetSum) {
  FleetExecutor exec(8);
  const std::vector<uint64_t> a = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::vector<uint64_t> b = {2, 7, 1, 8, 2, 8, 1, 8};
  uint64_t dot = std::inner_product(a.begin(), a.end(), b.begin(),
                                    uint64_t{0});

  Rng rng1(41);
  Metrics m1;
  auto serial = SecureScalarProduct(a, b, 128, &rng1, &m1, nullptr);
  Rng rng2(41);
  Metrics m2;
  auto parallel = SecureScalarProduct(a, b, 128, &rng2, &m2, &exec);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*serial, dot);
  EXPECT_EQ(*serial, *parallel);
  ExpectMetricsEq(m1, m2);

  std::vector<uint64_t> fleet(40);
  for (size_t i = 0; i < fleet.size(); ++i) {
    fleet[i] = 10 + i;
  }
  uint64_t total = std::accumulate(fleet.begin(), fleet.end(), uint64_t{0});
  Rng rng3(42);
  Metrics m3;
  auto sum_serial = PaillierFleetSum(fleet, 128, &rng3, &m3, nullptr);
  Rng rng4(42);
  Metrics m4;
  auto sum_parallel = PaillierFleetSum(fleet, 128, &rng4, &m4, &exec);
  ASSERT_TRUE(sum_serial.ok());
  ASSERT_TRUE(sum_parallel.ok());
  EXPECT_EQ(*sum_serial, total);
  EXPECT_EQ(*sum_serial, *sum_parallel);
  ExpectMetricsEq(m3, m4);
}

}  // namespace
}  // namespace pds::global
