#include <gtest/gtest.h>

#include "pds/pds_node.h"

namespace pds::node {
namespace {

using ac::Action;
using ac::PolicySet;
using ac::Rule;
using ac::Subject;
using embdb::ColumnType;
using embdb::Predicate;
using embdb::Schema;
using embdb::Tuple;
using embdb::Value;

TEST(PolicyTest, DenyByDefault) {
  PolicySet policies;
  auto d = policies.Check({"doctor", "d1"}, Action::kRead, "health",
                          {"diagnosis"});
  EXPECT_FALSE(d.allowed);
}

TEST(PolicyTest, AllColumnsRule) {
  PolicySet policies;
  policies.AddRule({"owner", Action::kRead, "health", {}, std::nullopt});
  EXPECT_TRUE(policies.Check({"owner", "a"}, Action::kRead, "health",
                             {"diagnosis", "date"})
                  .allowed);
  EXPECT_TRUE(
      policies.Check({"owner", "a"}, Action::kRead, "health", {}).allowed);
  // Different table / action / role still denied.
  EXPECT_FALSE(
      policies.Check({"owner", "a"}, Action::kRead, "bank", {}).allowed);
  EXPECT_FALSE(
      policies.Check({"owner", "a"}, Action::kInsert, "health", {}).allowed);
  EXPECT_FALSE(
      policies.Check({"guest", "g"}, Action::kRead, "health", {}).allowed);
}

TEST(PolicyTest, ColumnSubsetRule) {
  PolicySet policies;
  policies.AddRule(
      {"researcher", Action::kRead, "health", {"age", "diagnosis"},
       std::nullopt});
  EXPECT_TRUE(policies.Check({"researcher", "r"}, Action::kRead, "health",
                             {"age"})
                  .allowed);
  EXPECT_TRUE(policies.Check({"researcher", "r"}, Action::kRead, "health",
                             {"age", "diagnosis"})
                  .allowed);
  // Requesting a column beyond the grant is denied.
  EXPECT_FALSE(policies.Check({"researcher", "r"}, Action::kRead, "health",
                              {"age", "name"})
                   .allowed);
  // Requesting all columns via a subset rule is denied.
  EXPECT_FALSE(
      policies.Check({"researcher", "r"}, Action::kRead, "health", {})
          .allowed);
}

TEST(PolicyTest, RulesCompose) {
  PolicySet policies;
  policies.AddRule(
      {"auditor", Action::kRead, "t", {"a"}, std::nullopt});
  policies.AddRule(
      {"auditor", Action::kRead, "t", {"b"}, std::nullopt});
  EXPECT_TRUE(
      policies.Check({"auditor", "x"}, Action::kRead, "t", {"a", "b"})
          .allowed);
}

TEST(PolicyTest, RowFilterSurfaces) {
  PolicySet policies;
  Predicate medical_only{2, Predicate::Op::kEq, Value::Str("medical")};
  policies.AddRule(
      {"doctor", Action::kRead, "records", {}, medical_only});
  auto d = policies.Check({"doctor", "d"}, Action::kRead, "records", {});
  ASSERT_TRUE(d.allowed);
  ASSERT_EQ(d.mandatory_filters.size(), 1u);
  EXPECT_EQ(d.mandatory_filters[0].column, 2);
}

class PdsNodeTest : public ::testing::Test {
 protected:
  PdsNodeTest() {
    PdsNode::Config cfg;
    cfg.node_id = 1;
    cfg.fleet_key = crypto::KeyFromString("fleet");
    cfg.flash_geometry.page_size = 512;
    cfg.flash_geometry.pages_per_block = 8;
    cfg.flash_geometry.block_count = 512;
    node_ = std::make_unique<PdsNode>(cfg);

    Schema records("records", {{"id", ColumnType::kUint64, ""},
                               {"category", ColumnType::kString, ""},
                               {"detail", ColumnType::kString, ""},
                               {"cost", ColumnType::kDouble, ""}});
    EXPECT_TRUE(node_->DefineTable(records).ok());

    auto& p = node_->policies();
    p.AddRule({"owner", Action::kInsert, "records", {}, std::nullopt});
    p.AddRule({"owner", Action::kRead, "records", {}, std::nullopt});
    Predicate medical{1, Predicate::Op::kEq, Value::Str("medical")};
    p.AddRule({"doctor", Action::kRead, "records", {}, medical});
    p.AddRule({"stats-agency", Action::kShare, "records",
               {"category", "cost"}, std::nullopt});
  }

  Status InsertRecord(uint64_t id, const std::string& category,
                      const std::string& detail, double cost) {
    return node_
        ->InsertAs({"owner", "alice"}, "records",
                   {Value::U64(id), Value::Str(category), Value::Str(detail),
                    Value::F64(cost)})
        .status();
  }

  std::unique_ptr<PdsNode> node_;
};

TEST_F(PdsNodeTest, OwnerInsertAllowedGuestDenied) {
  EXPECT_TRUE(InsertRecord(1, "medical", "flu", 40).ok());
  auto denied = node_->InsertAs({"guest", "g"}, "records",
                                {Value::U64(2), Value::Str("bank"),
                                 Value::Str("x"), Value::F64(0)});
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(PdsNodeTest, DoctorSeesOnlyMedicalRows) {
  ASSERT_TRUE(InsertRecord(1, "medical", "flu", 40).ok());
  ASSERT_TRUE(InsertRecord(2, "bank", "loan", 1000).ok());
  ASSERT_TRUE(InsertRecord(3, "medical", "xray", 120).ok());

  int rows = 0;
  ASSERT_TRUE(node_
                  ->QueryAs({"doctor", "dr-lucas"}, "records", {}, {},
                            [&](const Tuple& t) {
                              EXPECT_EQ(t[1].AsStr(), "medical");
                              ++rows;
                              return Status::Ok();
                            })
                  .ok());
  EXPECT_EQ(rows, 2);

  // The owner sees everything.
  rows = 0;
  ASSERT_TRUE(node_
                  ->QueryAs({"owner", "alice"}, "records", {}, {},
                            [&](const Tuple&) {
                              ++rows;
                              return Status::Ok();
                            })
                  .ok());
  EXPECT_EQ(rows, 3);
}

TEST_F(PdsNodeTest, ProjectionRestrictsColumns) {
  ASSERT_TRUE(InsertRecord(1, "medical", "flu", 40).ok());
  ASSERT_TRUE(node_
                  ->QueryAs({"owner", "alice"}, "records", {},
                            {"category", "cost"},
                            [&](const Tuple& t) {
                              EXPECT_EQ(t.size(), 2u);
                              EXPECT_EQ(t[0].AsStr(), "medical");
                              return Status::Ok();
                            })
                  .ok());
}

TEST_F(PdsNodeTest, UnknownSubjectDeniedAndAudited) {
  uint64_t before = node_->audit_entries();
  Status s = node_->QueryAs({"burglar", "b"}, "records", {}, {},
                            [](const Tuple&) { return Status::Ok(); });
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(node_->audit_entries(), before + 1);

  auto log = node_->ReadAuditLog();
  ASSERT_TRUE(log.ok());
  ASSERT_FALSE(log->empty());
  EXPECT_NE(log->back().find("DENY"), std::string::npos);
  EXPECT_NE(log->back().find("burglar"), std::string::npos);
}

TEST_F(PdsNodeTest, AuditRecordsAllows) {
  ASSERT_TRUE(InsertRecord(1, "medical", "flu", 40).ok());
  auto log = node_->ReadAuditLog();
  ASSERT_TRUE(log.ok());
  EXPECT_NE((*log)[0].find("ALLOW"), std::string::npos);
  EXPECT_NE((*log)[0].find("insert"), std::string::npos);
}

TEST_F(PdsNodeTest, ExportGatedByShareAction) {
  ASSERT_TRUE(InsertRecord(1, "medical", "flu", 40).ok());
  ASSERT_TRUE(InsertRecord(2, "medical", "xray", 120).ok());

  std::vector<std::pair<std::string, double>> exported;
  ASSERT_TRUE(node_
                  ->ExportAs({"stats-agency", "insee"}, "records", "category",
                             "cost", &exported)
                  .ok());
  ASSERT_EQ(exported.size(), 2u);
  EXPECT_EQ(exported[0].first, "medical");
  EXPECT_DOUBLE_EQ(exported[0].second, 40.0);

  // The owner has no share rule: even the owner cannot export.
  EXPECT_EQ(node_
                ->ExportAs({"owner", "alice"}, "records", "category", "cost",
                           &exported)
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(PdsNodeTest, TamperedTokenBlocksCrypto) {
  node_->token().Tamper();
  EXPECT_FALSE(node_->token().EncryptDet(ByteView(std::string_view("x"))).ok());
}

}  // namespace
}  // namespace pds::node

namespace pds::node {
namespace {

class PdsNodeShareTest : public ::testing::Test {
 protected:
  PdsNodeShareTest() {
    PdsNode::Config cfg;
    cfg.node_id = 2;
    cfg.fleet_key = crypto::KeyFromString("fleet");
    cfg.flash_geometry.page_size = 512;
    cfg.flash_geometry.pages_per_block = 8;
    cfg.flash_geometry.block_count = 512;
    node_ = std::make_unique<PdsNode>(cfg);

    Schema bills("bills", {{"id", ColumnType::kUint64, ""},
                           {"city", ColumnType::kString, ""},
                           {"amount", ColumnType::kDouble, ""},
                           {"year", ColumnType::kInt64, ""}});
    EXPECT_TRUE(node_->DefineTable(bills).ok());
    node_->policies().AddRule(
        {"owner", Action::kInsert, "bills", {}, std::nullopt});
    // The agency may share only recent rows (year >= 2025), and only the
    // (city, amount) columns.
    Predicate recent{3, Predicate::Op::kGe, Value::I64(2025)};
    node_->policies().AddRule(
        {"agency", Action::kShare, "bills", {"city", "amount"}, recent});

    Subject owner{"owner", "bob"};
    for (int64_t year : {2023, 2024, 2025, 2026}) {
      for (uint64_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(node_
                        ->InsertAs(owner, "bills",
                                   {Value::U64(i), Value::Str("lyon"),
                                    Value::F64(100.0 + i), Value::I64(year)})
                        .ok());
      }
    }
  }

  std::unique_ptr<PdsNode> node_;
};

TEST_F(PdsNodeShareTest, RowFilterAppliesToExport) {
  std::vector<std::pair<std::string, double>> exported;
  ASSERT_TRUE(node_
                  ->ExportAs({"agency", "insee"}, "bills", "city", "amount",
                             &exported)
                  .ok());
  // Only the 2025 and 2026 rows (6 of 12) pass the mandatory row filter.
  EXPECT_EQ(exported.size(), 6u);
}

TEST_F(PdsNodeShareTest, ColumnsOutsideGrantDenied) {
  std::vector<std::pair<std::string, double>> exported;
  // "year" is not in the share grant.
  EXPECT_EQ(node_
                ->ExportAs({"agency", "insee"}, "bills", "city", "year",
                           &exported)
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(PdsNodeShareTest, ForgottenRowsNeverExported) {
  // The owner deletes a 2026 row; a subsequent export must not contain it.
  ASSERT_TRUE(node_->db().Delete("bills", 9).ok());  // first 2026 row
  std::vector<std::pair<std::string, double>> exported;
  ASSERT_TRUE(node_
                  ->ExportAs({"agency", "insee"}, "bills", "city", "amount",
                             &exported)
                  .ok());
  EXPECT_EQ(exported.size(), 5u);
}

}  // namespace
}  // namespace pds::node
