// pdslint fixture: .value() reached without any guard.
namespace pds::global {

int UnguardedUse() {
  auto r = ComputeResult();
  return r.value();  // no ok()/has_value() guard anywhere in this function
}

}  // namespace pds::global
