// pdslint fixture: guarded .value() uses. Must stay silent.
namespace pds::global {

int GuardedUse() {
  auto r = ComputeResult();
  if (!r.ok()) {
    return -1;
  }
  return r.value();
}

int OptionalUse() {
  auto o = MaybeValue();
  if (!o.has_value()) {
    return -1;
  }
  return o.value();
}

int MacroUse() {
  int v = 0;
  PDS_ASSIGN_OR_RETURN(v, ComputeResult());
  return v;
}

}  // namespace pds::global
