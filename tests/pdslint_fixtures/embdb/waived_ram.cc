// pdslint fixture: allocations carrying waivers. Zero findings, two waivers.
#include <vector>

namespace pds::embdb {

int* MakeScratch() {
  return new int[16];  // pdslint: ram-exempt(fixed 64-byte scratch, freed by caller)
}

// pdslint: ram-exempt(output is bounded by the caller-supplied input list,
// which never exceeds one flash page)
void CopyAll(const std::vector<int>& in, std::vector<int>* out) {
  for (int v : in) {
    out->push_back(v);
  }
}

}  // namespace pds::embdb
