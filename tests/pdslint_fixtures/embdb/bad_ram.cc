// pdslint fixture: every allocation shape the tiny-RAM rule must flag.
// Not compiled — scanned by pdslint_test only.
#include <string>
#include <vector>

namespace pds::embdb {

int* MakeBuffer() {
  return new int[64];  // direct heap allocation
}

void* MakeRaw() {
  return malloc(256);  // C allocation
}

void Collect(std::vector<int>* out) {
  for (int i = 0; i < 1000; ++i) {
    out->push_back(i);  // unbounded growth in a loop
  }
}

void BuildMessage(std::string* s, int n) {
  for (int i = 0; i < n; ++i) {
    *s += "chunk";  // string concatenation in a loop
  }
}

}  // namespace pds::embdb
