// pdslint fixture: the same shapes as bad_ram.cc, but RAM-disciplined —
// gauge-accounted, reserve-bounded, or outside a loop. Must stay silent.
#include <string>
#include <vector>

namespace pds::embdb {

struct FakeCharge {
  bool Grow(int) { return true; }
};

bool Collect(FakeCharge* charge, std::vector<int>* out) {
  for (int i = 0; i < 1000; ++i) {
    if (!charge->Grow(static_cast<int>(sizeof(int)))) return false;
    out->push_back(i);  // accounted: the function charges a RamCharge
  }
  return true;
}

void Project(const std::vector<int>& in, std::vector<int>* out) {
  out->reserve(in.size());  // bounded up-front
  for (int v : in) {
    out->push_back(v);
  }
}

void SingleAppend(std::vector<int>* out) {
  out->push_back(7);  // growth, but not in a loop
}

}  // namespace pds::embdb
