// const-time: secret-dependent control flow and table indexing in a crypto
// kernel file (basename matches the montgomery*/bigint* scope). Every
// marked line must be flagged.

#include <cstddef>
#include <cstdint>
#include <vector>

using Limbs = std::vector<uint32_t>;

uint32_t table_lookup(const Limbs& t, size_t i);

// Case 1: plain branch on a secret limb.
// pdslint: secret(a)
uint32_t BranchOnSecret(const Limbs& a) {
  uint32_t r = 0;
  if (a[0] != 0) {  // FLAG
    r = 1;
  }
  return r;
}

// Case 2: early-exit comparison loop (the classic leaky >= test).
// pdslint: secret(t)
bool EarlyExitCompare(const Limbs& t, const Limbs& m, size_t n) {
  for (size_t i = n; i-- > 0;) {
    uint32_t ti = t[i];
    if (ti != m[i]) {  // FLAG
      return ti > m[i];
    }
  }
  return false;
}

// Case 3: while-loop bound by secret material.
// pdslint: secret(e)
uint32_t WhileOnSecret(uint32_t e) {
  uint32_t count = 0;
  while (e != 0) {  // FLAG
    e >>= 1;
    ++count;
  }
  return count;
}

// Case 4: for-loop condition involving the secret.
// pdslint: secret(e)
uint32_t ForOnSecret(uint32_t e) {
  uint32_t acc = 0;
  for (uint32_t i = 0; i < e; ++i) {  // FLAG
    acc += i;
  }
  return acc;
}

// Case 5: switch over a secret digit.
// pdslint: secret(digit)
uint32_t SwitchOnSecret(uint32_t digit) {
  switch (digit & 3) {  // FLAG
    case 0: return 1;
    default: return 2;
  }
}

// Case 6: secret-dependent select (?:) — both arms must be masked instead.
// pdslint: secret(flag)
uint32_t TernaryOnSecret(uint32_t flag, uint32_t x, uint32_t y) {
  uint32_t picked = flag != 0 ? x : y;  // FLAG
  return picked;
}

// Case 7: secret-indexed table load (cache-timing leak).
// pdslint: secret(digit)
uint32_t TableLoad(const Limbs& rows, uint32_t digit) {
  uint32_t entry = rows[digit];  // FLAG
  return entry;
}

// Case 8: the branch hides behind propagation through a local.
// pdslint: secret(e)
uint32_t PropagatedBranch(uint32_t e) {
  uint32_t window = e & 0xF;
  if (window != 0) {  // FLAG
    return 2;
  }
  return 1;
}

// Case 9: propagated secret used as an index.
// pdslint: secret(e)
uint32_t PropagatedIndex(const Limbs& rows, uint32_t e) {
  uint32_t d = e & 0xF;
  uint32_t entry = rows[d];  // FLAG
  return entry;
}

// Case 10: early return driven by a secret comparison.
// pdslint: secret(x)
bool EarlyReturn(uint32_t x, uint32_t y) {
  if (x == y) {  // FLAG
    return true;
  }
  return false;
}

// Case 11: loop whose continue-skip depends on a secret digit.
// pdslint: secret(digits)
uint32_t SkipZeroDigits(const Limbs& digits) {
  uint32_t acc = 0;
  for (size_t w = 0; w < digits.size(); ++w) {  // FLAG
    if (digits[w] == 0) {  // FLAG
      continue;
    }
    acc += table_lookup(digits, w);
  }
  return acc;
}
