// const-time: compliant kernel shapes — branchless mask selection, public
// loop bounds, and one reasoned waiver. Nothing here may be flagged.

#include <cstddef>
#include <cstdint>
#include <vector>

using Limbs = std::vector<uint32_t>;

// Case 1: branchless conditional subtract — borrow chain plus mask select.
// pdslint: secret(t)
void MaskSelectSubtract(const Limbs& t, const Limbs& m, Limbs* out) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < m.size(); ++i) {
    uint64_t diff = static_cast<uint64_t>(t[i]) - m[i] - borrow;
    (*out)[i] = static_cast<uint32_t>(diff);
    borrow = (diff >> 63) & 1;
  }
  const uint32_t mask = 0u - static_cast<uint32_t>(borrow ^ 1);
  for (size_t i = 0; i < m.size(); ++i) {
    (*out)[i] = ((*out)[i] & mask) | (t[i] & ~mask);
  }
}

// Case 2: loop bounds come from the public limb count, not the secret.
// pdslint: secret(a, b)
void PublicBoundLoop(const Limbs& a, const Limbs& b, size_t k, Limbs* out) {
  for (size_t i = 0; i < k; ++i) {
    (*out)[i] = a[i] ^ b[i];
  }
}

// Case 3: secret arithmetic without control flow.
// pdslint: secret(e)
uint32_t BranchlessFold(uint32_t e) {
  uint32_t d = 0;
  d |= (e & 1) << 0;
  d |= ((e >> 1) & 1) << 1;
  return d;
}

// Case 4: branch on a public flag while secrets are live.
// pdslint: secret(a)
uint32_t PublicBranch(const Limbs& a, bool use_simd) {
  uint32_t folded = a[0] ^ a[1];
  if (use_simd) {
    return folded ^ 1u;
  }
  return folded;
}

// Case 5: public index into a table while a secret is in scope.
// pdslint: secret(e)
uint32_t PublicIndex(const Limbs& rows, size_t w, uint32_t e) {
  uint32_t entry = rows[w];
  return entry + (e & 1);
}

// Case 6: unannotated helper — no seeds, no findings, by design.
uint32_t UnannotatedHelper(const Limbs& a) {
  if (a[0] != 0) {
    return 1;
  }
  return 0;
}

// Case 7: constant-trip-count bit extraction.
// pdslint: secret(e)
uint32_t FixedTripExtraction(uint32_t e) {
  uint32_t digit = 0;
  for (size_t b = 0; b < 4; ++b) {
    digit |= ((e >> b) & 1u) << b;
  }
  return digit;
}

// Case 8: a reasoned waiver covers a deliberate data-dependent skip.
// pdslint: secret(digit)
// pdslint: const-time-exempt(digit-0 skip leaks only the window Hamming
// pattern; accepted for throughput, mirrors src/crypto/montgomery.cc)
uint32_t WaivedSkip(const Limbs& rows, uint32_t digit) {
  if (digit != 0) {
    return rows[digit];
  }
  return 1;
}

// Case 9: mask-merged accumulator instead of a tainted ternary.
// pdslint: secret(flag)
uint32_t MaskedSelect(uint32_t flag, uint32_t x, uint32_t y) {
  const uint32_t nonzero = static_cast<uint32_t>(
      (static_cast<uint64_t>(flag) | (0ull - flag)) >> 63);
  const uint32_t mask = 0u - nonzero;
  return (x & mask) | (y & ~mask);
}

// Case 10: secret passed through to another kernel without branching.
// pdslint: secret(a, b)
void PassThrough(const Limbs& a, const Limbs& b, Limbs* out) {
  MaskSelectSubtract(a, b, out);
}
