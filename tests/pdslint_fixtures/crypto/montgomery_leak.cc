// Planted leak: a realistic square-and-multiply ladder whose multiply step
// is guarded by a secret exponent bit — the textbook timing side channel
// the const-time rule exists to catch. ctest asserts this is flagged.

#include <cstddef>
#include <cstdint>
#include <vector>

using Limbs = std::vector<uint32_t>;

void MontSquare(Limbs* acc, const Limbs& m);
void MontMulInto(Limbs* acc, const Limbs& base, const Limbs& m);

// pdslint: secret(e)
void LeakyLadder(const Limbs& base, const Limbs& e, const Limbs& m,
                 size_t limbs, Limbs* acc) {
  for (size_t w = limbs; w-- > 0;) {
    for (int b = 31; b >= 0; --b) {
      MontSquare(acc, m);
      uint32_t bit = (e[w] >> b) & 1u;
      if (bit != 0) {  // FLAG: multiply only when the secret bit is set
        MontMulInto(acc, base, m);
      }
    }
  }
}
