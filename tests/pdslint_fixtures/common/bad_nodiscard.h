// pdslint fixture: Status/Result declarations missing [[nodiscard]].
#ifndef PDSLINT_FIXTURE_BAD_NODISCARD_H_
#define PDSLINT_FIXTURE_BAD_NODISCARD_H_

namespace pds {

class Widget {
 public:
  Status Open();                 // missing [[nodiscard]]
  Result<int> Compute() const;   // missing [[nodiscard]]
  static Status Validate(int v); // missing [[nodiscard]]

  const Status& last_status() const;  // reference return: exempt
  void Close();                       // not fallible: exempt
};

Status GlobalInit();             // missing [[nodiscard]]

}  // namespace pds

#endif  // PDSLINT_FIXTURE_BAD_NODISCARD_H_
