// pdslint fixture: properly annotated fallible API. Must stay silent.
#ifndef PDSLINT_FIXTURE_GOOD_NODISCARD_H_
#define PDSLINT_FIXTURE_GOOD_NODISCARD_H_

namespace pds {

class Widget {
 public:
  [[nodiscard]] Status Open();
  [[nodiscard]] Result<int> Compute() const;
  [[nodiscard]] static Status Validate(int v);

  // Annotation on the previous line also counts.
  [[nodiscard]]
  Status Flush();

  const Status& last_status() const;
  void Close();
};

[[nodiscard]] Status GlobalInit();

}  // namespace pds

#endif  // PDSLINT_FIXTURE_GOOD_NODISCARD_H_
