// pdslint fixture: the same instrumentation shapes as bad_obs.cc, but
// preallocated — pointers resolved at setup, literal span names, single
// atomic adds on the hot path. Must stay silent.
#include <string>
#include <vector>

namespace pds::search {

void ScanPostings(const std::vector<int>& postings) {
  static auto* counter =
      obs::Registry::Global().GetCounter("search.postings");  // setup, once
  for (int p : postings) {
    counter->Add(1);
    (void)p;
  }
}

void TraceQuery(const std::vector<int>& postings) {
  obs::Span span("search.query", "search");  // literal name
  for (int p : postings) {
    obs::Span inner("search.posting", "search");  // spans in loops are fine
    (void)p;
  }
}

}  // namespace pds::search
