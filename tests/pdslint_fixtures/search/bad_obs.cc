// pdslint fixture: every obs misuse the obs-in-embedded rule must flag.
// Not compiled — scanned by pdslint_test only.
#include <string>
#include <vector>

namespace pds::search {

void ScanPostings(const std::vector<int>& postings) {
  for (int p : postings) {
    obs::Registry::Global().GetCounter("search.postings")->Add(1);  // lookup per event
    (void)p;
  }
}

void ScoreDocs(int n) {
  for (int i = 0; i < n; ++i) {
    obs::Tracer::Global().Intern("doc");  // interning inside the hot loop
  }
}

void TraceQuery(int qid) {
  obs::Span span(std::to_string(qid).c_str(), "search");  // dynamic span name
  (void)qid;
}

}  // namespace pds::search
