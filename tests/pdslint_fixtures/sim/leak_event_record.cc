// Planted leak for the simulator's event log: a debugging aid copies a
// secret-annotated Paillier ciphertext (annotated because its bytes
// identify the participant's records) into the per-link event record the
// simulator keeps for every delivered frame. The log outlives the frame
// and is dumped wholesale by bench tooling, so the record sink must only
// ever see sizes and kinds. ctest asserts the secret-flow rule catches
// the tainted RecordEvent call.
#include <cstdint>
#include <vector>

namespace pds::sim {

using Bytes = std::vector<uint8_t>;

struct EventRec {
  uint64_t t_ns = 0;
  uint32_t kind = 0;
  uint64_t bytes = 0;
  Bytes payload;  // the leak: records should never carry frame bytes
};

// pdslint: sink(RecordEvent)
void RecordEvent(std::vector<EventRec>* log, const EventRec& rec) {
  log->push_back(rec);  // growth, but not in a loop
}

// pdslint: secret(payload_ct)
void TraceDelivery(std::vector<EventRec>* log, uint64_t t_ns,
                   const Bytes& payload_ct) {
  EventRec rec;
  rec.t_ns = t_ns;
  rec.kind = 1;
  rec.bytes = payload_ct.size();
  rec.payload = payload_ct;
  RecordEvent(log, rec);  // FLAG: ciphertext rides into the event log
}

}  // namespace pds::sim
