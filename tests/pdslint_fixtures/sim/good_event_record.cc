// pdslint fixture: the sim-module event-record discipline, done right.
// The simulator's per-link log records *metadata about* frames — sizes,
// kinds, virtual timestamps — never the frame bytes themselves, and its
// append path reserves up front (the sim module is under the tiny-RAM
// rule: a million token endpoints share one process). Must stay silent.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pds::sim {

struct EventRec {
  uint64_t t_ns = 0;
  uint32_t kind = 0;
  uint64_t bytes = 0;
};

// pdslint: sink(RecordEvent)
void RecordEvent(std::vector<EventRec>* log, uint64_t t_ns, uint32_t kind,
                 uint64_t bytes) {
  EventRec rec;
  rec.t_ns = t_ns;
  rec.kind = kind;
  rec.bytes = bytes;
  log->push_back(rec);  // growth, but not in a loop
}

void ReplayDeliveries(const std::vector<uint64_t>& frame_sizes,
                      std::vector<EventRec>* log) {
  log->reserve(log->size() + frame_sizes.size());  // bounded up-front
  uint64_t now_ns = 0;
  for (uint64_t size : frame_sizes) {
    now_ns += 1000;
    RecordEvent(log, now_ns, 1, size);  // sizes and kinds only, no payload
  }
}

}  // namespace pds::sim
