// Planted leak for the adversarial reply path: a tampering-diagnosis
// helper copies a secret-annotated ciphertext (the sealed payload under
// audit, annotated because its MAC'd bytes identify the participant's
// records) into the human-readable diagnostic string it prints when a
// verdict fails. ctest asserts the secret-flow rule catches the print.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

using Bytes = std::vector<uint8_t>;

struct Verdict {
  bool ok = true;
  std::string problem;
};

// pdslint: secret(payload_ct)
Verdict AuditTamperedReply(const Bytes& payload_ct, uint64_t participant) {
  Verdict v;
  v.ok = false;
  std::string diag = "participant " + std::to_string(participant) + ": ";
  for (uint8_t b : payload_ct) {
    diag += static_cast<char>('a' + (b & 0x0f));
  }
  v.problem = diag;
  std::printf("tampered reply: %s\n", diag.c_str());  // FLAG: ct in the log
  return v;
}
