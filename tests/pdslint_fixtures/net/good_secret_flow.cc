// secret-flow: compliant shapes — secrets sanitized before a sink, kept
// away from sinks, or deliberately declassified with a reason. Nothing in
// this file may be flagged.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

using Bytes = std::vector<uint8_t>;

// pdslint: sink(EncodeFrame, SendLabel)
Bytes EncodeFrame(const Bytes& payload);
void SendLabel(const std::string& label);

Bytes EncryptRecord(const Bytes& key, const Bytes& plain);
Bytes HmacTag(const Bytes& key, const Bytes& msg);
Bytes Mac(const Bytes& key, const Bytes& msg);
Bytes DecryptRecord(const Bytes& ct);

Bytes master_key;  // pdslint: secret

// Case 1: encrypt before the wire — the canonical sanitized path.
Bytes OkEncryptThenSend(const Bytes& plain) {
  Bytes ct = EncryptRecord(master_key, plain);
  return EncodeFrame(ct);
}

// Case 2: HMAC over the secret is a sanitizer too.
Bytes OkHmacThenSend(const Bytes& msg) {
  Bytes tag = HmacTag(master_key, msg);
  return EncodeFrame(tag);
}

// Case 3: Mac sanitizer inline in the sink's own argument list.
Bytes OkMacInline(const Bytes& msg) {
  return EncodeFrame(Mac(master_key, msg));
}

// Case 4: untainted data through the encoder.
Bytes OkPlainTraffic(const Bytes& request) {
  return EncodeFrame(request);
}

// Case 5: secret used internally, never near a sink.
uint8_t OkInternalUse() {
  uint8_t acc = 0;
  acc |= master_key.empty() ? 0 : master_key[0];
  return acc;
}

// Case 6: decrypt output consumed locally and discarded.
uint64_t OkDecryptLocal(const Bytes& ct) {
  Bytes plain = DecryptRecord(ct);
  return plain.size();
}

// Case 7: a sink call whose arguments are clean while a secret lives
// elsewhere in the same function.
Bytes OkCleanArgsBesideSecret(const Bytes& request) {
  Bytes staged = master_key;
  (void)staged;
  return EncodeFrame(request);
}

// Case 8: deliberate, reasoned declassify.
Bytes OkDeclassified() {
  Bytes fingerprint = master_key;
  return EncodeFrame(fingerprint);  // pdslint: declassify(public key fingerprint, reviewed)
}

// Case 9: annotated secret parameter that only feeds arithmetic.
// pdslint: secret(fleet_key)
uint8_t OkParamArithmetic(const Bytes& fleet_key) {
  return fleet_key.empty() ? 0 : fleet_key[0];
}

// Case 10: label derived from public metadata only.
void OkPublicLabel(size_t round) {
  SendLabel("round-" + std::to_string(round));
}

// Case 11: re-encryption round-trip — decrypt, fold, encrypt, send.
Bytes OkReEncrypt(const Bytes& ct) {
  Bytes plain = DecryptRecord(ct);
  Bytes out = EncryptRecord(master_key, plain);
  return EncodeFrame(out);
}
