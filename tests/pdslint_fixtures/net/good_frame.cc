// net-bounded-frame: the compliant shape — every declared count is checked
// against a compile-time kMax* bound before any allocation happens.

#include <cstdint>
#include <string>
#include <vector>

inline constexpr uint32_t kMaxNames = 1u << 10;
inline constexpr uint32_t kMaxPayloadBytes = 1u << 16;

struct Reader {
  uint32_t U32();
  std::string Str();
};

bool DecodeNames(Reader* r, std::vector<std::string>* out) {
  uint32_t n = r->U32();
  if (n > kMaxNames) {
    return false;
  }
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    out->push_back(r->Str());
  }
  return true;
}

bool ParsePayload(Reader* r, std::vector<uint8_t>* out) {
  uint32_t len = r->U32();
  if (len > kMaxPayloadBytes) {
    return false;
  }
  out->resize(len);
  return true;
}
