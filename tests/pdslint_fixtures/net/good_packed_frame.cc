// net-bounded-frame, packed path: compliant shapes — the kMaxPacked* bound
// is checked before the slot-count allocation and before the ciphertext is
// materialized. Nothing in this file may be flagged.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

using Bytes = std::vector<uint8_t>;

enum class RoundKind { kCollect, kPackedCollect };

constexpr size_t kMaxBatchTuples = 1u << 16;
constexpr size_t kMaxPackedSlots = 256;
constexpr size_t kMaxPackedCiphertextBytes = 2048;

struct BigInt {
  static BigInt FromBytes(const Bytes& b);
};

struct Reader {
  uint32_t U32();
  Bytes Blob(size_t cap);
};

struct PackedDomain {
  std::vector<std::string> labels;
};

// Case 1: ciphertext length checked against the packed bound before the
// BigInt materialization.
BigInt OkPackedHandler(RoundKind kind, const Bytes& ct_bytes) {
  if (kind == RoundKind::kPackedCollect) {
    if (ct_bytes.size() > kMaxPackedCiphertextBytes) return BigInt();
    return BigInt::FromBytes(ct_bytes);
  }
  return BigInt();
}

// Case 2: slot count gated by kMaxPackedSlots before the resize.
bool DecodePackedDomain(Reader* r, RoundKind kind, PackedDomain* out) {
  if (kind != RoundKind::kPackedCollect) return false;
  uint32_t count = r->U32();
  if (count > kMaxPackedSlots) return false;
  out->labels.resize(count);
  return true;
}

// Case 3: a non-packed decoder still only needs the generic bound (sized
// once up front — no unaccounted growth inside the loop).
bool DecodeBatchSizes(Reader* r, std::vector<uint32_t>* out) {
  uint32_t count = r->U32();
  if (count > kMaxBatchTuples) return false;
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    (*out)[i] = r->U32();
  }
  return true;
}
