// secret-flow: every case below moves secret-tagged material into a sink
// (wire encoder, obs label, print) without Encrypt*/Hmac/Mac/Attest or a
// declassify — each marked line must be flagged.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

using Bytes = std::vector<uint8_t>;

// pdslint: sink(EncodeFrame, SendLabel)
Bytes EncodeFrame(const Bytes& payload);
void SendLabel(const std::string& label);

Bytes DecryptRecord(const Bytes& ct);

struct Msg {
  Bytes body;
};

Bytes master_key;  // pdslint: secret

// Case 1: secret straight into a wire encoder.
Bytes LeakDirect() {
  return EncodeFrame(master_key);  // FLAG
}

// Case 2: propagation through a plain assignment.
Bytes LeakViaAssign() {
  Bytes staged = master_key;
  return EncodeFrame(staged);  // FLAG
}

// Case 3: propagation through a member write.
Bytes LeakViaMember() {
  Msg m;
  m.body = master_key;
  return EncodeFrame(m.body);  // FLAG
}

// Case 4: decrypt output (built-in seed) reaches the encoder.
Bytes LeakDecryptOutput(const Bytes& ct) {
  Bytes plain = DecryptRecord(ct);
  return EncodeFrame(plain);  // FLAG
}

// Case 5: propagation through a container append.
Bytes LeakViaContainer() {
  Bytes staging;
  staging.insert(staging.end(), master_key.begin(), master_key.end());
  return EncodeFrame(staging);  // FLAG
}

// Case 6: propagation through a range-for binding.
Bytes LeakViaRangeFor(const std::vector<Bytes>& batches) {
  Bytes joined = master_key;
  for (const auto& chunk : joined) {
    Bytes one = Bytes(1, chunk);
    return EncodeFrame(one);  // FLAG
  }
  return Bytes();
}

// Case 7: a function annotated secret-returning taints its call site.
// pdslint: secret
Bytes DeriveSessionKey();

Bytes LeakViaReturn() {
  Bytes session = DeriveSessionKey();
  return EncodeFrame(session);  // FLAG
}

// Case 8: printf leak.
void LeakViaPrintf() {
  std::printf("key byte %u\n", master_key[0]);  // FLAG
}

// Case 9: stream leak.
void LeakViaStream() {
  std::cout << master_key.size() << master_key[0];  // FLAG
}

// Case 10: annotated secret parameter reaches a sink.
// pdslint: secret(fleet_key)
void LeakParam(const Bytes& fleet_key) {
  SendLabel(std::string(fleet_key.begin(), fleet_key.end()));  // FLAG
}

// Case 11: compound assignment still propagates.
Bytes LeakViaCompound() {
  uint8_t acc = 0;
  acc |= master_key[0];
  Bytes one = Bytes(1, acc);
  return EncodeFrame(one);  // FLAG
}

// Case 12: PDS_ASSIGN_OR_RETURN-style macro binds a decrypt output.
#define ASSIGN_OR_RETURN(decl, expr) decl = (expr)
Bytes LeakViaMacro(const Bytes& ct) {
  ASSIGN_OR_RETURN(Bytes plain, DecryptRecord(ct));
  return EncodeFrame(plain);  // FLAG
}
