// net-bounded-frame, packed path: code special-casing the packed-aggregate
// round (RoundKind::kPackedCollect) must bound the peer-controlled slot
// count and ciphertext length with the kMaxPacked* constants before
// allocating. Every marked line must be flagged.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

using Bytes = std::vector<uint8_t>;

enum class RoundKind { kCollect, kPackedCollect };

constexpr size_t kMaxBatchTuples = 1u << 16;
constexpr size_t kMaxPackedSlots = 256;

struct BigInt {
  static BigInt FromBytes(const Bytes& b);
};

struct Reader {
  uint32_t U32();
  Bytes Blob(size_t cap);
};

struct PackedDomain {
  std::vector<std::string> labels;
};

// Case 1: packed handler materializes the wire ciphertext into a BigInt
// before any kMaxPacked* length check — the peer controls that blob size.
BigInt HandlePackedRound(RoundKind kind, const Bytes& ct_bytes) {
  if (kind == RoundKind::kPackedCollect) {
    return BigInt::FromBytes(ct_bytes);  // FLAG
  }
  return BigInt();
}

// Case 2: packed decoder sizes the label list from the declared slot count
// with only the generic tuple bound checked — 2^16 tuples is far past any
// packed slot layout, so the packed-specific constant must gate it.
bool DecodePackedDomain(Reader* r, RoundKind kind, PackedDomain* out) {
  if (kind != RoundKind::kPackedCollect) return false;
  uint32_t count = r->U32();
  if (count > kMaxBatchTuples) return false;
  out->labels.resize(count);  // FLAG
  return true;
}
