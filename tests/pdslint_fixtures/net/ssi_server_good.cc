// secret-flow, SSI scope: compliant SSI-side code — ciphertext passthrough,
// homomorphic combination, bounded metadata, and one reasoned declassify at
// the protocol's intended output boundary. Nothing here may be flagged.

#include <cstddef>
#include <cstdint>
#include <vector>

using Bytes = std::vector<uint8_t>;

Bytes DecryptAggregate(const Bytes& ct);
Bytes CombineCiphertexts(const Bytes& a, const Bytes& b);

// Case 1: ciphertext blobs pass through untouched.
Bytes SsiForwardsCiphertext(const Bytes& ct) {
  Bytes staged = ct;
  return staged;
}

// Case 2: homomorphic aggregation never sees a plaintext.
Bytes SsiAggregates(const std::vector<Bytes>& cts) {
  Bytes acc;
  for (const auto& ct : cts) {
    acc = CombineCiphertexts(acc, ct);
  }
  return acc;
}

// Case 3: bounded metadata (counts, sizes) is fine.
size_t SsiCountsSlots(const std::vector<Bytes>& cts) {
  size_t total = 0;
  for (const auto& ct : cts) {
    total += ct.size();
  }
  return total;
}

// Case 4: the one sanctioned decrypt — the aggregate result — behind a
// reasoned declassify (the protocol's intended output, never a per-token
// value).
Bytes SsiOpensAggregate(const Bytes& agg_ct) {
  Bytes total = DecryptAggregate(agg_ct);  // pdslint: declassify(aggregate sum only, the protocol output)
  return total;
}
