// secret-flow, SSI scope: this basename matches the ssi_server* pattern, so
// ANY statement touching secret material is a finding — the SSI runs on
// untrusted infrastructure and must only ever see ciphertext and bounded
// metadata. Every marked line must be flagged.

#include <cstdint>
#include <vector>

using Bytes = std::vector<uint8_t>;

struct SymmetricKey {
  Bytes bytes;
};

Bytes DecryptRecord(const Bytes& ct);
Bytes HmacTag(const SymmetricKey& key, const Bytes& msg);

SymmetricKey fleet_key;

// Case 1: the SSI decrypting per-token data — the core violation. The head
// is flagged too: the function is inferred secret-returning, so its very
// signature is secret material compiled into the SSI.
Bytes SsiDecryptsTuple(const Bytes& ct) {  // FLAG (inferred secret-returning)
  Bytes plain = DecryptRecord(ct);  // FLAG
  return plain;  // FLAG (plaintext still live in SSI code)
}

// Case 2: the fleet key compiled into the server at all.
Bytes SsiHoldsKey(const Bytes& msg) {  // FLAG (inferred secret-returning)
  Bytes staged = fleet_key.bytes;  // FLAG
  return staged;  // FLAG
}

// Case 3: even a sanitizer call means the SSI possesses the key.
// pdslint: secret(session_key)
Bytes SsiMacsWithKey(const SymmetricKey& session_key,
                     const Bytes& msg) {
  Bytes tag = HmacTag(session_key, msg);  // FLAG
  return tag;
}
