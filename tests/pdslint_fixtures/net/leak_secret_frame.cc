// Planted leak: a SecureToken-shaped handler that serializes its fleet key
// (a built-in SymmetricKey seed — no annotation needed) into a wire frame
// encoder. ctest asserts the secret-flow rule catches this.

#include <cstdint>
#include <vector>

using Bytes = std::vector<uint8_t>;

struct SymmetricKey {
  Bytes bytes;
};

// pdslint: sink(EncodeHello)
Bytes EncodeHello(const Bytes& payload);

struct TokenConfig {
  SymmetricKey fleet_key;
};

Bytes LeakFleetKeyInHello(const TokenConfig& cfg) {
  Bytes hello;
  hello.insert(hello.end(), cfg.fleet_key.bytes.begin(),
               cfg.fleet_key.bytes.end());
  return EncodeHello(hello);  // FLAG: raw fleet key on the wire
}
