// net-bounded-frame: decoders that size containers from wire-declared
// lengths without checking a compile-time kMax* bound first. Every
// allocation below is driven by a length the peer controls.

#include <cstdint>
#include <string>
#include <vector>

struct Reader {
  uint32_t U32();
  std::string Str();
};

std::vector<std::string> DecodeNames(Reader* r) {
  uint32_t n = r->U32();
  std::vector<std::string> names;
  names.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    names.push_back(r->Str());
  }
  return names;
}

std::vector<uint8_t> ParsePayload(Reader* r) {
  uint32_t len = r->U32();
  std::vector<uint8_t> out;
  out.resize(len);
  return out;
}
