// Planted leak: a trace-id "generator" that folds fleet-key bytes (a
// built-in SymmetricKey seed — no annotation needed) into the trace_id of
// an outgoing trace-context block. Trace ids travel in cleartext on every
// traced frame, so AttachTraceContext is a secret-flow sink exactly like
// the payload encoders. ctest asserts the secret-flow rule catches this.

#include <cstdint>
#include <vector>

using Bytes = std::vector<uint8_t>;

struct SymmetricKey {
  Bytes bytes;
};

struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;
};

// pdslint: sink(AttachTraceContext)
Bytes AttachTraceContext(const Bytes& frame, const TraceContext& ctx);

struct TokenConfig {
  SymmetricKey fleet_key;
};

Bytes TraceFrameWithKeyedId(const TokenConfig& cfg, const Bytes& frame) {
  uint64_t trace_id = 0;
  for (uint8_t b : cfg.fleet_key.bytes) {
    trace_id = (trace_id << 8) ^ b;
  }
  TraceContext ctx;
  ctx.trace_id = trace_id;
  ctx.parent_span_id = 1;
  ctx.sampled = true;
  return AttachTraceContext(frame, ctx);  // FLAG: key material in a trace id
}
