// pdslint fixture: hygienic header. Must stay silent.
#ifndef PDSLINT_FIXTURE_GOOD_HEADER_H_
#define PDSLINT_FIXTURE_GOOD_HEADER_H_

#include <string>

namespace pds::anon {

inline constexpr int kMaxRequests = 16;
extern const char kName[];

class Counter {
 public:
  void Touch();

 private:
  int count_ = 0;  // member, not a global
};

}  // namespace pds::anon

#endif  // PDSLINT_FIXTURE_GOOD_HEADER_H_
