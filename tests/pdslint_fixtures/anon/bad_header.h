// pdslint fixture: header hygiene violations — no include guard, a
// namespace-level using directive, and a mutable global.

#include <string>

using namespace std;

namespace pds::anon {

inline int g_request_count = 0;

void Touch();

}  // namespace pds::anon
