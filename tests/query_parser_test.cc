#include <gtest/gtest.h>

#include "embdb/database.h"
#include "embdb/query_parser.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {
namespace {

TEST(ParseSelectTest, StarQuery) {
  auto q = ParseSelect("SELECT * FROM people");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->columns.empty());
  EXPECT_EQ(q->table, "people");
  EXPECT_TRUE(q->where.empty());
}

TEST(ParseSelectTest, ColumnsAndWhere) {
  auto q = ParseSelect(
      "SELECT name, age FROM people WHERE city = 'Lyon' AND age >= 30");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->columns, (std::vector<std::string>{"name", "age"}));
  ASSERT_EQ(q->where.size(), 2u);
  EXPECT_EQ(q->where[0].column, "city");
  EXPECT_EQ(q->where[0].op, Predicate::Op::kEq);
  EXPECT_EQ(q->where[0].literal, "Lyon");
  EXPECT_TRUE(q->where[0].literal_is_string);
  EXPECT_EQ(q->where[1].op, Predicate::Op::kGe);
  EXPECT_EQ(q->where[1].literal, "30");
  EXPECT_FALSE(q->where[1].literal_is_string);
}

TEST(ParseSelectTest, CaseInsensitiveKeywords) {
  auto q = ParseSelect("select * from t where x != 5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where[0].op, Predicate::Op::kNe);
}

TEST(ParseSelectTest, AllOperators) {
  for (auto [text, op] : std::vector<std::pair<std::string, Predicate::Op>>{
           {"=", Predicate::Op::kEq},
           {"!=", Predicate::Op::kNe},
           {"<", Predicate::Op::kLt},
           {"<=", Predicate::Op::kLe},
           {">", Predicate::Op::kGt},
           {">=", Predicate::Op::kGe}}) {
    auto q = ParseSelect("SELECT * FROM t WHERE c " + text + " 1");
    ASSERT_TRUE(q.ok()) << text;
    EXPECT_EQ(q->where[0].op, op) << text;
  }
}

TEST(ParseSelectTest, QuoteEscaping) {
  auto q = ParseSelect("SELECT * FROM t WHERE name = 'O''Brien'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where[0].literal, "O'Brien");
}

TEST(ParseSelectTest, NegativeAndDecimalLiterals) {
  auto q = ParseSelect("SELECT * FROM t WHERE a = -42 AND b < 3.5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where[0].literal, "-42");
  EXPECT_EQ(q->where[1].literal, "3.5");
}

TEST(ParseSelectTest, Errors) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("INSERT INTO t").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a = ").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a = 'unterminated").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE a = 1 OR b = 2").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM t trailing junk").ok());
}

Schema PeopleSchema() {
  return Schema("people", {{"id", ColumnType::kUint64, ""},
                           {"city", ColumnType::kString, ""},
                           {"age", ColumnType::kInt64, ""},
                           {"score", ColumnType::kDouble, ""}});
}

TEST(BindTest, ResolvesColumnsAndTypes) {
  auto q = ParseSelect(
      "SELECT city FROM people WHERE age > 21 AND score <= 0.5 AND "
      "city = 'Lyon' AND id = 7");
  ASSERT_TRUE(q.ok());
  auto b = Bind(*q, PeopleSchema());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->projection, (std::vector<int>{1}));
  ASSERT_EQ(b->predicates.size(), 4u);
  EXPECT_EQ(b->predicates[0].constant.type(), ColumnType::kInt64);
  EXPECT_EQ(b->predicates[1].constant.type(), ColumnType::kDouble);
  EXPECT_EQ(b->predicates[2].constant.type(), ColumnType::kString);
  EXPECT_EQ(b->predicates[3].constant.type(), ColumnType::kUint64);
}

TEST(BindTest, RejectsTypeMismatches) {
  auto q1 = ParseSelect("SELECT * FROM people WHERE city = 5");
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(Bind(*q1, PeopleSchema()).ok());

  auto q2 = ParseSelect("SELECT * FROM people WHERE age = 'young'");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(Bind(*q2, PeopleSchema()).ok());

  auto q3 = ParseSelect("SELECT * FROM people WHERE id = -5");
  ASSERT_TRUE(q3.ok());
  EXPECT_FALSE(Bind(*q3, PeopleSchema()).ok());

  auto q4 = ParseSelect("SELECT ghost FROM people");
  ASSERT_TRUE(q4.ok());
  EXPECT_FALSE(Bind(*q4, PeopleSchema()).ok());
}

class DatabaseQueryTest : public ::testing::Test {
 protected:
  DatabaseQueryTest()
      : chip_(Geometry()), gauge_(128 * 1024), db_(&chip_, &gauge_) {
    Database::TableOptions topts;
    topts.data_blocks = 64;
    topts.directory_blocks = 16;
    EXPECT_TRUE(db_.CreateTable(PeopleSchema(), topts).ok());
    Database::IndexOptions iopts;
    iopts.keys_blocks = 32;
    iopts.bloom_blocks = 8;
    EXPECT_TRUE(db_.CreateKeyIndex("people", "city", iopts).ok());
    const char* cities[] = {"lyon", "paris", "nice"};
    for (uint64_t i = 0; i < 120; ++i) {
      Tuple t = {Value::U64(i), Value::Str(cities[i % 3]),
                 Value::I64(static_cast<int64_t>(20 + i % 40)),
                 Value::F64(static_cast<double>(i) / 10.0)};
      EXPECT_TRUE(db_.Insert("people", t).ok());
    }
    // A bulk of extra rows in many other cities so that equality on one
    // city is selective — the regime where the index route pays off.
    for (uint64_t i = 120; i < 3000; ++i) {
      Tuple t = {Value::U64(i),
                 Value::Str("bulk-city-" + std::to_string(i % 300)),
                 Value::I64(200), Value::F64(0.0)};
      EXPECT_TRUE(db_.Insert("people", t).ok());
    }
  }

  static flash::Geometry Geometry() {
    flash::Geometry g;
    g.page_size = 512;
    g.pages_per_block = 8;
    g.block_count = 1024;
    return g;
  }

  int Count(const std::string& sql) {
    int n = 0;
    Status s = db_.Query(sql, [&](const Tuple&) {
      ++n;
      return Status::Ok();
    });
    EXPECT_TRUE(s.ok()) << sql << ": " << s.ToString();
    return n;
  }

  flash::FlashChip chip_;
  mcu::RamGauge gauge_;
  Database db_;
};

TEST_F(DatabaseQueryTest, FullScanQuery) {
  EXPECT_EQ(Count("SELECT * FROM people"), 3000);
}

TEST_F(DatabaseQueryTest, FilterQuery) {
  EXPECT_EQ(Count("SELECT * FROM people WHERE age < 25"), 15);
  EXPECT_EQ(Count("SELECT * FROM people WHERE score >= 11.9"), 1);
  EXPECT_EQ(Count("SELECT * FROM people WHERE age = 200"), 2880);
}

TEST_F(DatabaseQueryTest, IndexRoutedEqualityMatchesScan) {
  // The same query through the index (city is indexed) and by forcing a
  // scan (predicate order irrelevant) must agree.
  int via_planner = Count("SELECT * FROM people WHERE city = 'lyon'");
  Predicate p{1, Predicate::Op::kEq, Value::Str("lyon")};
  int via_scan = 0;
  ASSERT_TRUE(db_.SelectScan("people", {p},
                             [&](uint64_t, const Tuple&) {
                               ++via_scan;
                               return Status::Ok();
                             })
                  .ok());
  EXPECT_EQ(via_planner, via_scan);
  EXPECT_EQ(via_planner, 40);
}

TEST_F(DatabaseQueryTest, IndexRouteUsesFewerReads) {
  chip_.ResetStats();
  (void)Count("SELECT * FROM people WHERE city = 'nice'");
  uint64_t indexed_reads = chip_.stats().page_reads;
  chip_.ResetStats();
  (void)Count("SELECT * FROM people WHERE age = 25");  // no index on age
  uint64_t scan_reads = chip_.stats().page_reads;
  EXPECT_LT(indexed_reads, scan_reads);
}

TEST_F(DatabaseQueryTest, ResidualPredicatesApplied) {
  int n = Count(
      "SELECT id FROM people WHERE city = 'lyon' AND age < 25");
  // lyon rows are i % 3 == 0; age = 20 + i % 40 < 25 -> i % 40 < 5.
  int expected = 0;
  for (int i = 0; i < 120; ++i) {
    if (i % 3 == 0 && i % 40 < 5) ++expected;
  }
  EXPECT_EQ(n, expected);
}

TEST_F(DatabaseQueryTest, ProjectionShapes) {
  ASSERT_TRUE(db_.Query("SELECT city, id FROM people WHERE id = 7",
                        [&](const Tuple& t) {
                          EXPECT_EQ(t.size(), 2u);
                          EXPECT_EQ(t[0].AsStr(), "paris");
                          EXPECT_EQ(t[1].AsU64(), 7u);
                          return Status::Ok();
                        })
                  .ok());
}

TEST_F(DatabaseQueryTest, ErrorsSurface) {
  auto noop = [](const Tuple&) { return Status::Ok(); };
  EXPECT_EQ(db_.Query("SELECT * FROM ghosts", noop).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Query("SELECT nope FROM people", noop).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Query("not sql at all", noop).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pds::embdb
