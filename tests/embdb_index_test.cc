#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "common/rng.h"
#include "embdb/key_index.h"
#include "embdb/reorganize.h"
#include "embdb/tree_index.h"
#include "flash/flash.h"
#include "mcu/ram_gauge.h"

namespace pds::embdb {
namespace {

flash::Geometry IndexGeometry() {
  flash::Geometry g;
  g.page_size = 512;
  g.pages_per_block = 8;
  g.block_count = 1024;
  return g;
}

class KeyIndexTest : public ::testing::Test {
 protected:
  KeyIndexTest() : chip_(IndexGeometry()), alloc_(&chip_), gauge_(64 * 1024) {}

  std::unique_ptr<KeyLogIndex> NewIndex(double bits_per_key = 16.0,
                                        uint32_t key_blocks = 32,
                                        uint32_t bloom_blocks = 8) {
    auto keys = alloc_.Allocate(key_blocks);
    auto bloom = alloc_.Allocate(bloom_blocks);
    EXPECT_TRUE(keys.ok());
    EXPECT_TRUE(bloom.ok());
    KeyLogIndex::Options opts;
    opts.bits_per_key = bits_per_key;
    auto index = std::make_unique<KeyLogIndex>(*keys, *bloom, &gauge_, opts);
    EXPECT_TRUE(index->Init().ok());
    return index;
  }

  flash::FlashChip chip_;
  flash::PartitionAllocator alloc_;
  mcu::RamGauge gauge_;
};

TEST_F(KeyIndexTest, LookupFindsAllDuplicates) {
  auto index = NewIndex();
  // "lyon" at rowids 20, 30, 50, 70, 90 — the tutorial's example.
  std::vector<uint64_t> lyon_rows = {20, 30, 50, 70, 90};
  for (uint64_t r = 0; r < 100; ++r) {
    bool is_lyon =
        std::find(lyon_rows.begin(), lyon_rows.end(), r) != lyon_rows.end();
    ASSERT_TRUE(
        index->Insert(Value::Str(is_lyon ? "lyon" : "city-" +
                                           std::to_string(r)), r).ok());
  }
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  ASSERT_TRUE(index->Lookup(Value::Str("lyon"), &rowids, &stats).ok());
  std::sort(rowids.begin(), rowids.end());
  EXPECT_EQ(rowids, lyon_rows);
  EXPECT_EQ(stats.matches, 5u);
}

TEST_F(KeyIndexTest, AbsentKeyFindsNothing) {
  auto index = NewIndex();
  for (uint64_t r = 0; r < 200; ++r) {
    ASSERT_TRUE(index->Insert(Value::U64(r), r).ok());
  }
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  ASSERT_TRUE(index->Lookup(Value::U64(9999), &rowids, &stats).ok());
  EXPECT_TRUE(rowids.empty());
}

TEST_F(KeyIndexTest, SummaryScanIsCheaperThanKeyScan) {
  // The E1 shape: lookup IO = summary pages + hit pages << key pages.
  auto index = NewIndex(16.0);
  for (uint64_t r = 0; r < 2000; ++r) {
    ASSERT_TRUE(
        index->Insert(Value::Str("city-" + std::to_string(r % 500)), r).ok());
  }
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  ASSERT_TRUE(index->Lookup(Value::Str("city-7"), &rowids, &stats).ok());
  EXPECT_EQ(rowids.size(), 4u);  // 2000/500
  EXPECT_GT(index->num_key_pages_flushed(), 0u);
  // Summary is ~2 bytes/key vs 32-byte entries: ~16x fewer pages.
  EXPECT_LT(stats.summary_pages,
            std::max(1u, index->num_key_pages_flushed() / 8));
  // Total lookup IO far below scanning all key pages.
  EXPECT_LT(stats.summary_pages + stats.key_pages,
            index->num_key_pages_flushed());
}

TEST_F(KeyIndexTest, LowBitsPerKeyRaisesFalsePositives) {
  auto precise = NewIndex(16.0);
  auto sloppy = NewIndex(2.0);
  for (uint64_t r = 0; r < 3000; ++r) {
    ASSERT_TRUE(precise->Insert(Value::U64(r), r).ok());
    ASSERT_TRUE(sloppy->Insert(Value::U64(r), r).ok());
  }
  uint64_t fp_precise = 0, fp_sloppy = 0;
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  for (uint64_t probe = 100000; probe < 100200; ++probe) {
    ASSERT_TRUE(precise->Lookup(Value::U64(probe), &rowids, &stats).ok());
    fp_precise += stats.false_positive_pages;
    ASSERT_TRUE(sloppy->Lookup(Value::U64(probe), &rowids, &stats).ok());
    fp_sloppy += stats.false_positive_pages;
  }
  EXPECT_GT(fp_sloppy, fp_precise);
}

TEST_F(KeyIndexTest, UnflushedEntriesVisible) {
  auto index = NewIndex();
  ASSERT_TRUE(index->Insert(Value::Str("fresh"), 42).ok());
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats stats;
  ASSERT_TRUE(index->Lookup(Value::Str("fresh"), &rowids, &stats).ok());
  ASSERT_EQ(rowids.size(), 1u);
  EXPECT_EQ(rowids[0], 42u);
}

TEST_F(KeyIndexTest, ScanEntriesSeesEverything) {
  auto index = NewIndex();
  for (uint64_t r = 0; r < 137; ++r) {
    ASSERT_TRUE(index->Insert(Value::U64(r * 3), r).ok());
  }
  uint64_t count = 0;
  ASSERT_TRUE(index
                  ->ScanEntries([&](const uint8_t* key, uint64_t rowid) {
                    (void)key;
                    (void)rowid;
                    ++count;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(count, 137u);
}

TEST_F(KeyIndexTest, RamChargeReleasedOnDestruction) {
  size_t before = gauge_.in_use();
  {
    auto index = NewIndex();
    EXPECT_GT(gauge_.in_use(), before);
  }
  EXPECT_EQ(gauge_.in_use(), before);
}

class TreeIndexTest : public ::testing::Test {
 protected:
  TreeIndexTest() : chip_(IndexGeometry()), alloc_(&chip_), gauge_(64 * 1024) {}

  /// Builds a tree over n entries with key = f(i), rowid = i.
  Result<TreeIndex> BuildTree(
      uint64_t n, const std::function<Value(uint64_t)>& key_of,
      size_t sort_ram = 8 * 1024) {
    // Feed through a key log + reorganizer, exercising the whole pipeline.
    auto keys = alloc_.Allocate(64);
    auto bloom = alloc_.Allocate(16);
    KeyLogIndex source(*keys, *bloom, &gauge_, {});
    PDS_RETURN_IF_ERROR(source.Init());
    for (uint64_t i = 0; i < n; ++i) {
      PDS_RETURN_IF_ERROR(source.Insert(key_of(i), i));
    }
    Reorganizer::Options opts;
    opts.sort_ram_bytes = sort_ram;
    return Reorganizer::Reorganize(&source, &alloc_, &gauge_, opts);
  }

  flash::FlashChip chip_;
  flash::PartitionAllocator alloc_;
  mcu::RamGauge gauge_;
};

TEST_F(TreeIndexTest, EmptyTree) {
  auto tree = BuildTree(0, [](uint64_t) { return Value::U64(0); });
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->height(), 0u);
  std::vector<uint64_t> rowids;
  TreeIndex::LookupStats stats;
  ASSERT_TRUE(tree->Lookup(Value::U64(5), &rowids, &stats).ok());
  EXPECT_TRUE(rowids.empty());
}

TEST_F(TreeIndexTest, SingleLeaf) {
  auto tree = BuildTree(5, [](uint64_t i) { return Value::U64(i); });
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->height(), 1u);
  std::vector<uint64_t> rowids;
  TreeIndex::LookupStats stats;
  ASSERT_TRUE(tree->Lookup(Value::U64(3), &rowids, &stats).ok());
  ASSERT_EQ(rowids.size(), 1u);
  EXPECT_EQ(rowids[0], 3u);
}

TEST_F(TreeIndexTest, MultiLevelLookupEveryKey) {
  // 512-byte pages -> 15 leaf entries/page; 3000 entries -> height >= 2.
  const uint64_t n = 3000;
  auto tree = BuildTree(n, [](uint64_t i) { return Value::U64(i * 7); });
  ASSERT_TRUE(tree.ok());
  EXPECT_GE(tree->height(), 2u);
  EXPECT_EQ(tree->num_entries(), n);

  Rng rng(5);
  std::vector<uint64_t> rowids;
  TreeIndex::LookupStats stats;
  for (int t = 0; t < 200; ++t) {
    uint64_t i = rng.Uniform(n);
    ASSERT_TRUE(tree->Lookup(Value::U64(i * 7), &rowids, &stats).ok());
    ASSERT_EQ(rowids.size(), 1u) << "key " << i * 7;
    EXPECT_EQ(rowids[0], i);
  }
}

TEST_F(TreeIndexTest, AbsentKeysReturnEmpty) {
  auto tree = BuildTree(3000, [](uint64_t i) { return Value::U64(i * 2); });
  ASSERT_TRUE(tree.ok());
  std::vector<uint64_t> rowids;
  TreeIndex::LookupStats stats;
  for (uint64_t odd = 1; odd < 100; odd += 2) {
    ASSERT_TRUE(tree->Lookup(Value::U64(odd), &rowids, &stats).ok());
    EXPECT_TRUE(rowids.empty()) << odd;
  }
}

TEST_F(TreeIndexTest, DuplicateRunsSpanLeaves) {
  // Few distinct keys, many duplicates: runs cross leaf boundaries.
  const uint64_t n = 1000;
  auto tree = BuildTree(n, [](uint64_t i) { return Value::U64(i % 7); });
  ASSERT_TRUE(tree.ok());
  std::vector<uint64_t> rowids;
  TreeIndex::LookupStats stats;
  for (uint64_t k = 0; k < 7; ++k) {
    ASSERT_TRUE(tree->Lookup(Value::U64(k), &rowids, &stats).ok());
    // ceil/floor of 1000/7.
    EXPECT_NEAR(static_cast<double>(rowids.size()), 1000.0 / 7, 1.0);
    // All returned rowids must actually have this key and be ascending.
    for (size_t i = 0; i < rowids.size(); ++i) {
      EXPECT_EQ(rowids[i] % 7, k);
      if (i > 0) {
        EXPECT_LT(rowids[i - 1], rowids[i]);
      }
    }
  }
}

TEST_F(TreeIndexTest, LookupIoIsLogarithmic) {
  const uint64_t n = 5000;
  auto tree = BuildTree(n, [](uint64_t i) { return Value::U64(i); });
  ASSERT_TRUE(tree.ok());
  std::vector<uint64_t> rowids;
  TreeIndex::LookupStats stats;
  ASSERT_TRUE(tree->Lookup(Value::U64(2500), &rowids, &stats).ok());
  // height-1 internal reads + a couple of leaves.
  EXPECT_LE(stats.internal_pages, tree->height() - 1);
  EXPECT_LE(stats.leaf_pages, 2u);
  EXPECT_LT(stats.internal_pages + stats.leaf_pages,
            tree->num_leaf_pages() / 4);
}

TEST_F(TreeIndexTest, RangeScan) {
  auto tree = BuildTree(500, [](uint64_t i) { return Value::U64(i); });
  ASSERT_TRUE(tree.ok());
  std::vector<uint64_t> seen;
  ASSERT_TRUE(tree->Range(Value::U64(100), Value::U64(149),
                          [&](const uint8_t* key, uint64_t rowid) {
                            (void)key;
                            seen.push_back(rowid);
                            return Status::Ok();
                          })
                  .ok());
  ASSERT_EQ(seen.size(), 50u);
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 149u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST_F(TreeIndexTest, StringKeys) {
  auto tree = BuildTree(800, [](uint64_t i) {
    return Value::Str("city-" + std::to_string(i % 40));
  });
  ASSERT_TRUE(tree.ok());
  std::vector<uint64_t> rowids;
  TreeIndex::LookupStats stats;
  ASSERT_TRUE(tree->Lookup(Value::Str("city-13"), &rowids, &stats).ok());
  EXPECT_EQ(rowids.size(), 20u);
  for (uint64_t r : rowids) {
    EXPECT_EQ(r % 40, 13u);
  }
}

TEST_F(TreeIndexTest, BuilderRejectsOutOfOrder) {
  auto leaf = alloc_.Allocate(4);
  auto internal = alloc_.Allocate(2);
  TreeIndexBuilder builder(*leaf, *internal);
  uint8_t e1[32] = {0}, e2[32] = {0};
  e1[0] = 5;
  e2[0] = 3;  // smaller key after larger
  ASSERT_TRUE(builder.Add(e1).ok());
  EXPECT_EQ(builder.Add(e2).code(), StatusCode::kInvalidArgument);
}

TEST_F(TreeIndexTest, ReorganizationSpeedsUpLookups) {
  // The E4 claim: after reorganization, lookups cost far fewer IOs.
  auto keys = alloc_.Allocate(128);
  auto bloom = alloc_.Allocate(32);
  KeyLogIndex source(*keys, *bloom, &gauge_, {});
  ASSERT_TRUE(source.Init().ok());
  const uint64_t n = 4000;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(source.Insert(Value::U64(i), i).ok());
  }

  chip_.ResetStats();
  std::vector<uint64_t> rowids;
  KeyLogIndex::LookupStats kstats;
  ASSERT_TRUE(source.Lookup(Value::U64(1234), &rowids, &kstats).ok());
  uint64_t log_reads = chip_.stats().page_reads;

  auto tree = Reorganizer::Reorganize(&source, &alloc_, &gauge_, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  chip_.ResetStats();
  TreeIndex::LookupStats tstats;
  ASSERT_TRUE(tree->Lookup(Value::U64(1234), &rowids, &tstats).ok());
  uint64_t tree_reads = chip_.stats().page_reads;

  EXPECT_LT(tree_reads, log_reads);
  ASSERT_EQ(rowids.size(), 1u);
  EXPECT_EQ(rowids[0], 1234u);
}

TEST_F(TreeIndexTest, ReorganizationPreservesEveryEntry) {
  auto keys = alloc_.Allocate(64);
  auto bloom = alloc_.Allocate(16);
  KeyLogIndex source(*keys, *bloom, &gauge_, {});
  ASSERT_TRUE(source.Init().ok());
  Rng rng(11);
  std::map<uint64_t, std::vector<uint64_t>> expected;
  for (uint64_t r = 0; r < 2000; ++r) {
    uint64_t key = rng.Uniform(300);
    expected[key].push_back(r);
    ASSERT_TRUE(source.Insert(Value::U64(key), r).ok());
  }
  auto tree = Reorganizer::Reorganize(&source, &alloc_, &gauge_, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_entries(), 2000u);

  std::vector<uint64_t> rowids;
  TreeIndex::LookupStats stats;
  for (auto& [key, rows] : expected) {
    ASSERT_TRUE(tree->Lookup(Value::U64(key), &rowids, &stats).ok());
    EXPECT_EQ(rowids, rows) << "key " << key;  // ascending rowids
  }
}

}  // namespace
}  // namespace pds::embdb
